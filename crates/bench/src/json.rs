//! A tiny JSON emitter *and parser* for machine-readable benchmark results.
//!
//! The build environment is offline (no serde), so the harness binaries
//! serialize their results with this minimal value tree instead.  Output is
//! deterministic: object keys are emitted in insertion order.  The parser
//! exists for the CI bench-regression gate (`bench_gate`), which reads the
//! emitted `BENCH_*.json` files back and compares them against committed
//! baselines.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug)]
pub enum Json {
    /// A float (rendered with enough precision for metrics).
    Num(f64),
    /// An integer.
    Int(u64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(key.clone()).render_into(out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Parse a JSON document (the subset this module emits: no exponents in
    /// emitted output are *excluded* — the parser accepts standard JSON
    /// numbers, strings, booleans, null, arrays and objects).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }

    /// Look up a dotted path of object keys and array indices, e.g.
    /// `batching.series.2.signatures`.  Returns `None` when any component is
    /// missing.
    pub fn get(&self, path: &str) -> Option<&Json> {
        let mut current = self;
        for part in path.split('.') {
            current = match current {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == part).map(|(_, v)| v)?,
                Json::Arr(items) => items.get(part.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(current)
    }

    /// The numeric value of this node, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The string value of this node, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements of this node, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            // Emitted for non-finite floats; round-trips as NaN.
            Some(b'n') => self.literal("null", Json::Num(f64::NAN)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(escape) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("unknown escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are UTF-8");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

/// Write a JSON document to `path` and report where it went.
pub fn write_json(path: &str, value: &Json) {
    match std::fs::write(path, value.render() + "\n") {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj([
            ("name", Json::str("fig6")),
            ("rows", Json::Arr(vec![Json::Int(1), Json::Num(2.5), Json::Bool(true)])),
            ("nested", Json::obj([("k", Json::str("v"))])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"fig6","rows":[1,2.5,true],"nested":{"k":"v"}}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn parse_round_trips_emitted_documents() {
        let doc = Json::obj([
            ("name", Json::str("fig5")),
            ("smoke", Json::Bool(false)),
            (
                "series",
                Json::Arr(vec![
                    Json::obj([("window_us", Json::Int(0)), ("signatures", Json::Int(812))]),
                    Json::obj([("window_us", Json::Int(100000)), ("ratio", Json::Num(7.25))]),
                ]),
            ),
            ("note", Json::str("a\"b\\c\nd")),
        ]);
        let parsed = Json::parse(&doc.render()).expect("round trip");
        assert_eq!(parsed.render(), doc.render());
    }

    #[test]
    fn get_walks_objects_and_arrays() {
        let doc = Json::parse(r#"{"a":{"b":[{"c":41},{"c":42.5}]}}"#).unwrap();
        assert_eq!(doc.get("a.b.1.c").and_then(Json::as_f64), Some(42.5));
        assert_eq!(doc.get("a.b.0.c").and_then(Json::as_f64), Some(41.0));
        assert!(doc.get("a.b.2.c").is_none());
        assert!(doc.get("a.x").is_none());
        assert_eq!(doc.get("a.b").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("tru").is_err());
    }

    #[test]
    fn parse_handles_negatives_null_and_unicode() {
        let doc = Json::parse(r#"{"v":-3.5,"n":null,"s":"héllo A"}"#).unwrap();
        assert_eq!(doc.get("v").and_then(Json::as_f64), Some(-3.5));
        assert!(doc.get("n").and_then(Json::as_f64).unwrap().is_nan());
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("héllo A"));
    }
}

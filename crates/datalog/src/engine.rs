//! The incremental rule-evaluation engine.
//!
//! [`Engine`] implements [`StateMachine`] for a [`RuleSet`].  It maintains a
//! reference-counted tuple store and, on every input, propagates changes
//! through the rules with a work-list algorithm:
//!
//! * A tuple is *present* on the node when it has at least one support:
//!   a base insertion, a local derivation, or a believed copy received from
//!   another node (`+τ`).
//! * A rule whose head lives on another node emits the derivation locally
//!   (the `derive` vertex belongs to the deriving node, cf. Figure 2) and
//!   ships the head to its home node with a `+τ` / `-τ` notification.
//! * Aggregation rules (`Min` / `Max` / `Count`) are recomputed per group
//!   whenever their body relation changes.
//! * `maybe` rules are rewritten, exactly as in Appendix A.1, into standard
//!   rules guarded by a synthetic base tuple `__maybe_<rule>` that the
//!   application inserts when it decides to trigger the rule.
//!
//! Following the simplification of Appendix A.1 ("we assume that tuples have
//! unique derivations"), `Derive` / `Underive` outputs are emitted only on a
//! tuple's 0→1 / 1→0 support transitions; additional derivations of an
//! already-present tuple are tracked internally by reference count.
//!
//! ## Indexed semi-naive evaluation
//!
//! The work-list is already semi-naive (only *delta* tuples re-trigger
//! rules); what used to be naive was the join: every body atom scanned the
//! entire flat store.  The engine now keeps its tuples in a
//! [`TupleStore`] — a multi-index, copy-on-write
//! store — and joins each delta against index-selected candidates only:
//!
//! * remaining body atoms are joined in **most-bound-first order**
//!   (`join_order`), so each step has the narrowest possible probe;
//! * each probe uses the **first bound column** of the atom as an exact
//!   per-(relation, column, value) index key, falling back to the
//!   per-relation index when no column is bound;
//! * candidate *sets* are exactly what the full scan would have matched
//!   (the index key mirrors `Term::unify`'s strict equality), and all
//!   downstream consumers are order-independent, so engine outputs and
//!   snapshot bytes are byte-identical to the retained
//!   [`NaiveEngine`](crate::naive::NaiveEngine) scan implementation.
//!
//! Per-rule counters (fires, probes, candidates) accumulate in
//! [`EvalMetrics`] and surface through `QueryStats` during audits.

use crate::analysis::{analyze, ProgramError};
use crate::machine::{Polarity, SmInput, SmOutput, StateMachine, TupleDelta};
use crate::rule::{AggKind, Atom, Bindings, Rule, RuleKind, Term};
use crate::snapshot::{SnapshotReader, SnapshotWriter};
use crate::store::{EvalMetrics, RuleEval, StoreSnapshot, Support, TupleStore};
use crate::tuple::Tuple;
use crate::value::Value;
use snp_crypto::keys::NodeId;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// The relation-name prefix of the synthetic guard tuples that drive
/// rewritten `maybe` rules.
pub const MAYBE_GUARD_PREFIX: &str = "__maybe_";

/// A validated set of rules shared by all nodes running the same protocol.
#[derive(Clone, Debug, Default)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Build a rule set: the program must pass static analysis with no
    /// error-level diagnostics (see [`crate::analysis`]), every rule must be
    /// localizable (all body atoms at one site), and `maybe` rules are
    /// rewritten into guarded standard rules.
    pub fn new(rules: Vec<Rule>) -> Result<RuleSet, ProgramError> {
        if let Some(err) = ProgramError::from_diagnostics(analyze(&rules)) {
            return Err(err);
        }
        let mut out = Vec::with_capacity(rules.len());
        for rule in rules {
            out.push(RuleSet::localize(rule)?);
        }
        Ok(RuleSet { rules: out })
    }

    /// Rewrite one analyzer-approved rule into its evaluated form (Appendix
    /// A.1: a `maybe` rule becomes a standard rule guarded by an extra base
    /// tuple the application inserts) and re-check the engine's structural
    /// invariants as a defense in depth behind the analyzer.
    fn localize(mut rule: Rule) -> Result<Rule, ProgramError> {
        if rule.body.is_empty() {
            return Err(ProgramError::internal(format!(
                "rule {}: empty body is not allowed",
                rule.id
            )));
        }
        if rule.kind == RuleKind::Maybe {
            let site = rule.evaluation_site().map_err(ProgramError::internal)?.clone();
            let guard_args: Vec<Term> = rule.head.args.clone();
            let guard = Atom::new(format!("{MAYBE_GUARD_PREFIX}{}", rule.id), site, guard_args);
            rule.body.push(guard);
            rule.kind = RuleKind::Standard;
        }
        rule.evaluation_site().map_err(ProgramError::internal)?;
        if rule.aggregate.is_some() && rule.body.len() != 1 {
            return Err(ProgramError::internal(format!(
                "rule {}: aggregation rules must have exactly one body atom",
                rule.id
            )));
        }
        Ok(rule)
    }

    /// Extend the set with one more rule, re-running static analysis over
    /// the whole extended program (so a duplicate id or a signature conflict
    /// with existing rules is rejected).  Returns the localized form of the
    /// accepted rule so callers can seed its evaluation.
    pub fn add_rule(&mut self, rule: Rule) -> Result<Rule, ProgramError> {
        let mut program = self.rules.clone();
        program.push(rule.clone());
        if let Some(err) = ProgramError::from_diagnostics(analyze(&program)) {
            return Err(err);
        }
        let localized = RuleSet::localize(rule)?;
        self.rules.push(localized.clone());
        Ok(localized)
    }

    /// The rules in the set (after `maybe` rewriting).
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The guard relation name for a `maybe` rule id.
    pub fn maybe_guard_relation(rule_id: &str) -> String {
        format!("{MAYBE_GUARD_PREFIX}{rule_id}")
    }
}

/// A recorded derivation: `head` was derived via `rule` from `body`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Derivation {
    rule: String,
    head: Tuple,
    body: Vec<Tuple>,
}

/// A change propagated through the work list.
#[derive(Clone, Debug)]
enum Change {
    Appeared(Tuple),
    Disappeared(Tuple),
}

/// The terms of an atom in index-column order: location first is *not* used
/// for probing (the local index already pins it), so args only.
fn atom_terms(atom: &Atom) -> impl Iterator<Item = &Term> {
    std::iter::once(&atom.location).chain(atom.args.iter())
}

/// How many of the atom's terms resolve under the given bound-variable set.
fn bound_terms(atom: &Atom, bound: &BTreeSet<&str>) -> usize {
    atom_terms(atom)
        .filter(|term| match term {
            Term::Const(_) => true,
            Term::Var(name) => bound.contains(name.as_str()),
        })
        .count()
}

/// Pick a static join order for the body atoms other than `skip_index`:
/// repeatedly take the atom with the most bound terms under the variables
/// bound so far (ties: lowest body position).  The bound-variable set after
/// matching a given atom sequence is the same for every partial binding, so
/// one symbolic pass fixes the order for the whole join — and since the
/// downstream consumers are order-independent (results are sorted and
/// deduplicated), reordering cannot change engine outputs, only probe cost.
fn join_order(rule: &Rule, skip_index: usize, initially_bound: &Bindings) -> Vec<usize> {
    let mut bound: BTreeSet<&str> = initially_bound.keys().map(String::as_str).collect();
    let mut remaining: Vec<usize> = (0..rule.body.len()).filter(|&i| i != skip_index).collect();
    let mut order = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let mut best_pos = 0usize;
        let mut best_score = bound_terms(&rule.body[remaining[0]], &bound);
        for (pos, &i) in remaining.iter().enumerate().skip(1) {
            let score = bound_terms(&rule.body[i], &bound);
            if score > best_score {
                best_pos = pos;
                best_score = score;
            }
        }
        let i = remaining.remove(best_pos);
        for term in atom_terms(&rule.body[i]) {
            if let Term::Var(name) = term {
                bound.insert(name.as_str());
            }
        }
        order.push(i);
    }
    order
}

/// The first argument column whose term is already bound (the probe key).
/// `Term::unify` against a bound term demands strict equality with the
/// stored value, so probing the exact-value index is sound.
fn first_bound_column(atom: &Atom, bindings: &Bindings) -> Option<(usize, Value)> {
    atom.args
        .iter()
        .enumerate()
        .find_map(|(col, term)| term.resolve(bindings).map(|v| (col, v)))
}

/// The incremental evaluation engine for one node.
#[derive(Debug)]
pub struct Engine {
    node: NodeId,
    ruleset: RuleSet,
    /// Support for every tuple currently present at this node, behind the
    /// multi-index copy-on-write store.
    ///
    /// This includes tuples homed at other nodes that were derived here:
    /// following Figure 2, `cost(@c,…)` derived on `b` appears and exists on
    /// `b` (and is shipped to `c`), but only tuples homed at *this* node are
    /// visible to rule bodies.
    store: TupleStore,
    /// All recorded derivations made at this node, keyed by head.
    derivations: BTreeMap<Tuple, BTreeSet<Derivation>>,
    /// Reverse index: body tuple → derivations that use it.
    deps: BTreeMap<Tuple, BTreeSet<Derivation>>,
    /// For each aggregation rule id, the currently derived heads and the body
    /// tuple that justifies each.
    agg_current: BTreeMap<String, BTreeMap<Tuple, Tuple>>,
    /// Per-rule evaluation counters since construction (or restore).
    metrics: EvalMetrics,
}

impl Engine {
    /// Create an engine for `node` running `ruleset`.
    pub fn new(node: NodeId, ruleset: RuleSet) -> Engine {
        Engine {
            node,
            ruleset,
            store: TupleStore::new(node),
            derivations: BTreeMap::new(),
            deps: BTreeMap::new(),
            agg_current: BTreeMap::new(),
            metrics: EvalMetrics::default(),
        }
    }

    /// The node this engine runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Whether a tuple is currently present on this node.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.store.view().contains(tuple)
    }

    /// All present tuples of a relation (per-relation index lookup, sorted in
    /// the same order the flat store used to iterate in).
    pub fn tuples_of(&self, relation: &str) -> Vec<Tuple> {
        self.store.view().tuples_of(relation)
    }

    /// Visit each present tuple of a relation by reference (same order as
    /// [`Engine::tuples_of`], without cloning).
    pub fn for_each_of(&self, relation: &str, f: impl FnMut(&Tuple)) {
        self.store.view().for_each_of(relation, f);
    }

    /// Take a lock-free reader handle on the store: the snapshot stays
    /// immutable while this engine keeps evaluating (copy-on-write), so
    /// parallel audit workers can inspect state without locking.
    pub fn reader(&self) -> Arc<StoreSnapshot> {
        self.store.reader()
    }

    /// Per-rule evaluation counters accumulated so far.
    pub fn metrics(&self) -> &EvalMetrics {
        &self.metrics
    }

    /// Convenience: insert the guard tuple that triggers `maybe` rule
    /// `rule_id` with the given head arguments (see [`RuleSet::new`]).
    pub fn maybe_guard(&self, rule_id: &str, args: Vec<Value>) -> Tuple {
        Tuple::new(RuleSet::maybe_guard_relation(rule_id), self.node, args)
    }

    /// Add one rule to a running engine.  The extended program must pass
    /// static analysis (a duplicate id, unsafe head or signature conflict is
    /// refused with a typed [`ProgramError`] and the engine is left
    /// unchanged); on success the rule is seeded against the current store
    /// and any new derivations propagate exactly as if the rule had always
    /// been present.  Returns the resulting outputs.
    pub fn add_rule(&mut self, rule: Rule) -> Result<Vec<SmOutput>, ProgramError> {
        let localized = self.ruleset.add_rule(rule)?;
        let mut outputs = Vec::new();
        let mut worklist = VecDeque::new();
        let mut metrics = std::mem::take(&mut self.metrics);
        if localized.aggregate.is_some() {
            self.refresh_aggregate(&localized, &mut metrics, &mut outputs, &mut worklist);
        } else {
            for derivation in self.seed_derivations(&localized, &mut metrics) {
                self.record_derivation(derivation, &mut outputs, &mut worklist);
            }
        }
        self.metrics = metrics;
        outputs.extend(self.process(worklist));
        Ok(outputs)
    }

    /// All derivations of a newly added rule over the current store (the
    /// join starts from no trigger: every body atom is index-probed).
    fn seed_derivations(&self, rule: &Rule, metrics: &mut EvalMetrics) -> Vec<Derivation> {
        let mut found = Vec::new();
        let eval = metrics.rule(&rule.id);
        for (mut complete, matched) in self.join_rest(rule, rule.body.len(), Bindings::new(), eval) {
            if !rule.constraints.iter().all(|c| c.apply(&mut complete)) {
                continue;
            }
            let Some(head) = rule.head.instantiate(&complete) else {
                continue;
            };
            eval.fires += 1;
            let body: Vec<Tuple> = matched.into_iter().map(|t| t.expect("all positions matched")).collect();
            found.push(Derivation {
                rule: rule.id.clone(),
                head,
                body,
            });
        }
        found.sort();
        found.dedup();
        found
    }

    // ----- support management -------------------------------------------------

    fn add_support(&mut self, tuple: &Tuple, f: impl FnOnce(&mut Support)) -> bool {
        self.store.add_support(tuple, f)
    }

    fn remove_support(&mut self, tuple: &Tuple, f: impl FnOnce(&mut Support)) -> bool {
        self.store.remove_support(tuple, f)
    }

    // ----- rule evaluation ----------------------------------------------------

    /// Join the remaining body atoms (all except `skip_index`) against the
    /// store, starting from `bindings`.  Returns complete binding sets.
    ///
    /// Atoms are visited most-bound-first and each partial binding probes the
    /// per-(relation, column, value) index by its first bound column, so the
    /// work per delta is proportional to the candidates actually matched —
    /// not the store size.
    fn join_rest(
        &self,
        rule: &Rule,
        skip_index: usize,
        bindings: Bindings,
        eval: &mut RuleEval,
    ) -> Vec<(Bindings, Vec<Option<Tuple>>)> {
        // Each result carries the matched tuple per body position (None at
        // skip_index, to be filled by the caller).
        let view = self.store.view();
        let order = join_order(rule, skip_index, &bindings);
        let mut partials: Vec<(Bindings, Vec<Option<Tuple>>)> = vec![(bindings, vec![None; rule.body.len()])];
        for i in order {
            let atom = &rule.body[i];
            let mut next = Vec::new();
            for (bound, matched) in &partials {
                let probe = first_bound_column(atom, bound);
                eval.probes += 1;
                // Rule bodies only see tuples homed at this node (NDlog
                // localization): the local index pins that, and the probe
                // column (if any) pins strict equality — `matches` rejects
                // any residual mismatch.
                for candidate in view.local_candidates(&atom.relation, probe.as_ref().map(|(c, v)| (*c, v))) {
                    eval.candidates += 1;
                    let mut extended = bound.clone();
                    if atom.matches(candidate, &mut extended) {
                        let mut matched = matched.clone();
                        matched[i] = Some(candidate.clone());
                        next.push((extended, matched));
                    }
                }
            }
            partials = next;
            if partials.is_empty() {
                break;
            }
        }
        partials
    }

    /// Find all new derivations triggered by the appearance of `trigger`.
    fn derivations_for(&self, trigger: &Tuple, metrics: &mut EvalMetrics) -> Vec<Derivation> {
        let mut found = Vec::new();
        if trigger.location != self.node {
            // Tuples homed elsewhere never participate in local joins.
            return found;
        }
        for rule in self.ruleset.rules() {
            if rule.aggregate.is_some() {
                continue;
            }
            for (i, atom) in rule.body.iter().enumerate() {
                if atom.relation != trigger.relation {
                    continue;
                }
                let mut bindings = Bindings::new();
                if !atom.matches(trigger, &mut bindings) {
                    continue;
                }
                let eval = metrics.rule(&rule.id);
                for (mut complete, mut matched) in self.join_rest(rule, i, bindings, eval) {
                    matched[i] = Some(trigger.clone());
                    if !rule.constraints.iter().all(|c| c.apply(&mut complete)) {
                        continue;
                    }
                    let Some(head) = rule.head.instantiate(&complete) else {
                        continue;
                    };
                    eval.fires += 1;
                    let body: Vec<Tuple> = matched.into_iter().map(|t| t.expect("all positions matched")).collect();
                    found.push(Derivation {
                        rule: rule.id.clone(),
                        head,
                        body,
                    });
                }
            }
        }
        found.sort();
        found.dedup();
        found
    }

    fn record_derivation(
        &mut self,
        derivation: Derivation,
        outputs: &mut Vec<SmOutput>,
        worklist: &mut VecDeque<Change>,
    ) {
        let entry = self.derivations.entry(derivation.head.clone()).or_default();
        if !entry.insert(derivation.clone()) {
            return; // already known
        }
        for body_tuple in &derivation.body {
            self.deps
                .entry(body_tuple.clone())
                .or_default()
                .insert(derivation.clone());
        }
        let appeared = self.add_support(&derivation.head, |s| s.derivation_count += 1);
        if appeared {
            // Appendix A.1 simplification: report a derivation only when the
            // tuple actually appears (support 0→1).
            outputs.push(SmOutput::Derive {
                tuple: derivation.head.clone(),
                rule: derivation.rule.clone(),
                body: derivation.body.clone(),
            });
            if derivation.head.location != self.node {
                // The head is homed elsewhere: ship it (Figure 2's
                // DERIVE/APPEAR on b followed by SEND b→c).
                outputs.push(SmOutput::Send {
                    to: derivation.head.location,
                    delta: TupleDelta::plus(derivation.head.clone()),
                });
            }
            worklist.push_back(Change::Appeared(derivation.head.clone()));
        }
    }

    fn retract_derivation(
        &mut self,
        derivation: &Derivation,
        outputs: &mut Vec<SmOutput>,
        worklist: &mut VecDeque<Change>,
    ) {
        let Some(entry) = self.derivations.get_mut(&derivation.head) else {
            return;
        };
        if !entry.remove(derivation) {
            return;
        }
        if entry.is_empty() {
            self.derivations.remove(&derivation.head);
        }
        for body_tuple in &derivation.body {
            if let Some(set) = self.deps.get_mut(body_tuple) {
                set.remove(derivation);
                if set.is_empty() {
                    self.deps.remove(body_tuple);
                }
            }
        }
        let disappeared = self.remove_support(&derivation.head, |s| {
            s.derivation_count = s.derivation_count.saturating_sub(1)
        });
        if disappeared {
            outputs.push(SmOutput::Underive {
                tuple: derivation.head.clone(),
                rule: derivation.rule.clone(),
                body: derivation.body.clone(),
            });
            if derivation.head.location != self.node {
                outputs.push(SmOutput::Send {
                    to: derivation.head.location,
                    delta: TupleDelta::minus(derivation.head.clone()),
                });
            }
            worklist.push_back(Change::Disappeared(derivation.head.clone()));
        }
    }

    /// Recompute an aggregation rule after its body relation changed.
    ///
    /// Candidates come from the per-relation (or constant-column) index; the
    /// winner per group is the argmin/argmax over `(value, witness)` in the
    /// tuple total order, which no enumeration order can change.
    fn refresh_aggregate(
        &mut self,
        rule: &Rule,
        metrics: &mut EvalMetrics,
        outputs: &mut Vec<SmOutput>,
        worklist: &mut VecDeque<Change>,
    ) {
        let (kind, agg_var) = rule.aggregate.clone().expect("aggregate rule");
        let body_atom = &rule.body[0];

        let candidates: Vec<Tuple> = {
            let view = self.store.view();
            let probe = first_bound_column(body_atom, &Bindings::new());
            view.local_candidates(&body_atom.relation, probe.as_ref().map(|(c, v)| (*c, v)))
                .cloned()
                .collect()
        };
        {
            let eval = metrics.rule(&rule.id);
            eval.probes += 1;
            eval.candidates += candidates.len() as u64;
        }

        // Compute, for each group (instantiated head), the winning body tuple.
        let mut groups: BTreeMap<Tuple, (i64, Tuple, i64)> = BTreeMap::new(); // head -> (agg value, witness, count)
        for candidate in &candidates {
            let mut bindings = Bindings::new();
            if !body_atom.matches(candidate, &mut bindings) {
                continue;
            }
            if !rule.constraints.iter().all(|c| c.apply(&mut bindings)) {
                continue;
            }
            let Some(agg_value) = bindings.get(&agg_var).and_then(Value::as_int) else {
                continue;
            };
            // The head's aggregate argument is bound to the aggregated value
            // below; remove it so grouping only depends on the other args.
            let mut group_bindings = bindings.clone();
            group_bindings.insert(agg_var.clone(), Value::Int(0));
            let Some(group_key) = rule.head.instantiate(&group_bindings) else {
                continue;
            };
            let entry = groups.entry(group_key).or_insert((agg_value, candidate.clone(), 0));
            entry.2 += 1;
            let better = match kind {
                AggKind::Min => agg_value < entry.0 || (agg_value == entry.0 && *candidate < entry.1),
                AggKind::Max => agg_value > entry.0 || (agg_value == entry.0 && *candidate < entry.1),
                AggKind::Count => false,
            };
            if better {
                entry.0 = agg_value;
                entry.1 = candidate.clone();
            }
        }

        // Materialize the new heads with the aggregate value substituted in.
        let mut new_heads: BTreeMap<Tuple, Tuple> = BTreeMap::new();
        for (group_key, (value, witness, count)) in groups {
            let mut head = group_key;
            let agg_result = match kind {
                AggKind::Min | AggKind::Max => value,
                AggKind::Count => count,
            };
            if let Some(last) = head.args.last_mut() {
                *last = Value::Int(agg_result);
            }
            new_heads.insert(head, witness);
        }

        let current = self.agg_current.entry(rule.id.clone()).or_default().clone();

        // Underive heads that are no longer justified.
        for (head, witness) in &current {
            if !new_heads.contains_key(head) {
                self.agg_current.get_mut(&rule.id).expect("entry exists").remove(head);
                let disappeared =
                    self.remove_support(head, |s| s.derivation_count = s.derivation_count.saturating_sub(1));
                if disappeared {
                    outputs.push(SmOutput::Underive {
                        tuple: head.clone(),
                        rule: rule.id.clone(),
                        body: vec![witness.clone()],
                    });
                    worklist.push_back(Change::Disappeared(head.clone()));
                }
            }
        }
        // Derive new heads.
        for (head, witness) in new_heads {
            if !current.contains_key(&head) {
                self.agg_current
                    .get_mut(&rule.id)
                    .expect("entry exists")
                    .insert(head.clone(), witness.clone());
                let appeared = self.add_support(&head, |s| s.derivation_count += 1);
                if appeared {
                    metrics.rule(&rule.id).fires += 1;
                    outputs.push(SmOutput::Derive {
                        tuple: head.clone(),
                        rule: rule.id.clone(),
                        body: vec![witness],
                    });
                    worklist.push_back(Change::Appeared(head));
                }
            }
        }
    }

    fn process(&mut self, mut worklist: VecDeque<Change>) -> Vec<SmOutput> {
        // Counters detach while the worklist drains (`derivations_for` takes
        // `&self` alongside the mutable counter) and reattach at the end.
        let mut metrics = std::mem::take(&mut self.metrics);
        let mut outputs = Vec::new();
        let mut steps = 0usize;
        while let Some(change) = worklist.pop_front() {
            steps += 1;
            assert!(
                steps < 100_000,
                "derivation propagation did not terminate; check rules for cycles"
            );
            match change {
                Change::Appeared(tuple) => {
                    for derivation in self.derivations_for(&tuple, &mut metrics) {
                        self.record_derivation(derivation, &mut outputs, &mut worklist);
                    }
                    let agg_rules: Vec<Rule> = self
                        .ruleset
                        .rules()
                        .iter()
                        .filter(|r| r.aggregate.is_some() && r.body[0].relation == tuple.relation)
                        .cloned()
                        .collect();
                    for rule in agg_rules {
                        self.refresh_aggregate(&rule, &mut metrics, &mut outputs, &mut worklist);
                    }
                }
                Change::Disappeared(tuple) => {
                    let dependent: Vec<Derivation> = self
                        .deps
                        .get(&tuple)
                        .map(|s| s.iter().cloned().collect())
                        .unwrap_or_default();
                    for derivation in dependent {
                        self.retract_derivation(&derivation, &mut outputs, &mut worklist);
                    }
                    let agg_rules: Vec<Rule> = self
                        .ruleset
                        .rules()
                        .iter()
                        .filter(|r| r.aggregate.is_some() && r.body[0].relation == tuple.relation)
                        .cloned()
                        .collect();
                    for rule in agg_rules {
                        self.refresh_aggregate(&rule, &mut metrics, &mut outputs, &mut worklist);
                    }
                }
            }
        }
        self.metrics = metrics;
        outputs
    }
}

impl StateMachine for Engine {
    fn handle(&mut self, input: SmInput) -> Vec<SmOutput> {
        let mut worklist = VecDeque::new();
        match input {
            SmInput::InsertBase(tuple) => {
                if self.add_support(&tuple, |s| s.base_count += 1) {
                    worklist.push_back(Change::Appeared(tuple));
                }
            }
            SmInput::DeleteBase(tuple) => {
                if self.remove_support(&tuple, |s| s.base_count = s.base_count.saturating_sub(1)) {
                    worklist.push_back(Change::Disappeared(tuple));
                }
            }
            SmInput::Receive { from, delta } => match delta.polarity {
                Polarity::Plus => {
                    if self.add_support(&delta.tuple, |s| *s.believed.entry(from).or_default() += 1) {
                        worklist.push_back(Change::Appeared(delta.tuple));
                    }
                }
                Polarity::Minus => {
                    if self.remove_support(&delta.tuple, |s| {
                        if let Some(count) = s.believed.get_mut(&from) {
                            *count = count.saturating_sub(1);
                            if *count == 0 {
                                s.believed.remove(&from);
                            }
                        }
                    }) {
                        worklist.push_back(Change::Disappeared(delta.tuple));
                    }
                }
            },
        }
        self.process(worklist)
    }

    fn fresh(&self) -> Box<dyn StateMachine> {
        Box::new(Engine::new(self.node, self.ruleset.clone()))
    }

    fn current_tuples(&self) -> Vec<Tuple> {
        self.store.view().current_tuples()
    }

    fn eval_metrics(&self) -> EvalMetrics {
        self.metrics.clone()
    }

    /// The snapshot covers the support table, the recorded derivations and
    /// the aggregate witnesses; `deps` is a pure reverse index of
    /// `derivations` and is rebuilt on restore, and the store indexes are
    /// likewise rebuilt, never encoded.  Entries are written in ascending
    /// tuple order — exactly the old flat `BTreeMap` iteration — so the
    /// bytes are identical to the scan implementation's.
    fn snapshot(&self) -> Option<Vec<u8>> {
        let mut w = SnapshotWriter::new();
        let view = self.store.view();
        w.u64(view.len() as u64);
        for (tuple, support) in view.entries_sorted() {
            w.tuple(tuple);
            w.u32(support.base_count);
            w.u32(support.derivation_count);
            w.u64(support.believed.len() as u64);
            for (peer, count) in &support.believed {
                w.node(*peer);
                w.u32(*count);
            }
        }
        let flat: Vec<&Derivation> = self.derivations.values().flatten().collect();
        w.u64(flat.len() as u64);
        for derivation in flat {
            w.str(&derivation.rule);
            w.tuple(&derivation.head);
            w.u64(derivation.body.len() as u64);
            for body in &derivation.body {
                w.tuple(body);
            }
        }
        w.u64(self.agg_current.len() as u64);
        for (rule_id, heads) in &self.agg_current {
            w.str(rule_id);
            w.u64(heads.len() as u64);
            for (head, witness) in heads {
                w.tuple(head);
                w.tuple(witness);
            }
        }
        Some(w.finish())
    }

    fn restore(&self, snapshot: &[u8]) -> Result<Box<dyn StateMachine>, String> {
        let mut r = SnapshotReader::new(snapshot);
        let mut engine = Engine::new(self.node, self.ruleset.clone());
        (|| {
            let stores = r.read_len()?;
            for _ in 0..stores {
                let tuple = r.tuple()?;
                let mut support = Support {
                    base_count: r.u32()?,
                    derivation_count: r.u32()?,
                    believed: BTreeMap::new(),
                };
                let peers = r.read_len()?;
                for _ in 0..peers {
                    let peer = r.node()?;
                    support.believed.insert(peer, r.u32()?);
                }
                // Rebuilds the relation/column indexes the snapshot does not
                // carry (zero-support entries are kept but stay unindexed,
                // exactly as the flat store kept them unjoinable).
                engine.store.insert_restored(tuple, support);
            }
            let derivation_count = r.read_len()?;
            for _ in 0..derivation_count {
                let rule = r.str()?;
                let head = r.tuple()?;
                let body_len = r.read_len()?;
                let mut body = Vec::with_capacity(body_len);
                for _ in 0..body_len {
                    body.push(r.tuple()?);
                }
                let derivation = Derivation { rule, head, body };
                for body_tuple in &derivation.body {
                    engine
                        .deps
                        .entry(body_tuple.clone())
                        .or_default()
                        .insert(derivation.clone());
                }
                engine
                    .derivations
                    .entry(derivation.head.clone())
                    .or_default()
                    .insert(derivation);
            }
            let agg_rules = r.read_len()?;
            for _ in 0..agg_rules {
                let rule_id = r.str()?;
                let heads = r.read_len()?;
                let entry = engine.agg_current.entry(rule_id).or_default();
                for _ in 0..heads {
                    let head = r.tuple()?;
                    let witness = r.tuple()?;
                    entry.insert(head, witness);
                }
            }
            r.expect_exhausted()
        })()
        .map_err(|e| e.to_string())?;
        Ok(Box::new(engine))
    }

    /// Rule-driven absence tracing: enumerate the rule instantiations that
    /// could derive the pattern over the known constant domain and report
    /// each one's first missing or failed body atom (see
    /// [`crate::absence::trace_absence`]).
    fn absence_of(&self, pattern: &Tuple, present: &[Tuple], peers: &[NodeId]) -> Vec<crate::absence::AbsenceWitness> {
        crate::absence::trace_absence(&self.ruleset, self.node, pattern, present, peers)
    }

    fn name(&self) -> String {
        format!("engine@{}", self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEngine;
    use crate::rule::{CmpOp, Constraint, Expr};

    /// The MinCost rule set from §3.3 of the paper.
    ///
    /// R1: cost(@X,Y,Y,K)  :- link(@X,Y,K)
    /// R2: cost(@C,D,B,K3) :- link(@B,C,K1), bestCost(@B,D,K2), K3 := K1+K2, C != D
    /// R3: bestCost(@X,Y,min K) :- cost(@X,Y,Z,K)
    pub fn mincost_rules() -> RuleSet {
        let r1 = Rule::standard(
            "R1",
            Atom::new(
                "cost",
                Term::var("X"),
                vec![Term::var("Y"), Term::var("Y"), Term::var("K")],
            ),
            vec![Atom::new("link", Term::var("X"), vec![Term::var("Y"), Term::var("K")])],
            vec![],
        );
        let r2 = Rule::standard(
            "R2",
            Atom::new(
                "cost",
                Term::var("C"),
                vec![Term::var("D"), Term::var("B"), Term::var("K3")],
            ),
            vec![
                Atom::new("link", Term::var("B"), vec![Term::var("C"), Term::var("K1")]),
                Atom::new("bestCost", Term::var("B"), vec![Term::var("D"), Term::var("K2")]),
            ],
            vec![
                Constraint::Assign {
                    var: "K3".into(),
                    expr: Expr::var("K1") + Expr::var("K2"),
                },
                Constraint::Compare {
                    lhs: Expr::var("C"),
                    op: CmpOp::Ne,
                    rhs: Expr::var("D"),
                },
            ],
        );
        let r3 = Rule::aggregate(
            "R3",
            Atom::new("bestCost", Term::var("X"), vec![Term::var("Y"), Term::var("K")]),
            Atom::new(
                "cost",
                Term::var("X"),
                vec![Term::var("Y"), Term::var("Z"), Term::var("K")],
            ),
            AggKind::Min,
            "K",
        );
        RuleSet::new(vec![r1, r2, r3]).expect("valid rules")
    }

    fn link(at: u64, to: u64, cost: i64) -> Tuple {
        Tuple::new("link", NodeId(at), vec![Value::node(to), Value::Int(cost)])
    }

    fn best_cost(at: u64, to: u64, cost: i64) -> Tuple {
        Tuple::new("bestCost", NodeId(at), vec![Value::node(to), Value::Int(cost)])
    }

    #[test]
    fn direct_link_produces_cost_and_best_cost() {
        let mut engine = Engine::new(NodeId(1), mincost_rules());
        let outputs = engine.handle(SmInput::InsertBase(link(1, 2, 5)));
        assert!(engine.contains(&best_cost(1, 2, 5)));
        assert!(outputs
            .iter()
            .any(|o| matches!(o, SmOutput::Derive { rule, .. } if rule == "R1")));
        assert!(outputs
            .iter()
            .any(|o| matches!(o, SmOutput::Derive { rule, .. } if rule == "R3")));
    }

    #[test]
    fn remote_head_is_derived_locally_and_shipped() {
        // Node 2 has a link to node 1 and a best cost to node 3; rule R2 derives
        // cost(@1, 3, 2, …) which appears on node 2 (Figure 2) and is shipped to
        // node 1 with a +τ notification.
        let mut engine = Engine::new(NodeId(2), mincost_rules());
        engine.handle(SmInput::InsertBase(link(2, 1, 1)));
        let outputs = engine.handle(SmInput::InsertBase(link(2, 3, 4)));
        let sends: Vec<_> = outputs
            .iter()
            .filter_map(|o| match o {
                SmOutput::Send { to, delta } if delta.polarity == Polarity::Plus => Some((*to, delta.tuple.clone())),
                _ => None,
            })
            .collect();
        let shipped = Tuple::new(
            "cost",
            NodeId(1),
            vec![Value::node(3u64), Value::node(2u64), Value::Int(5)],
        );
        assert!(
            sends.iter().any(|(to, t)| *to == NodeId(1) && *t == shipped),
            "expected {shipped} shipped to node 1, got {sends:?}"
        );
        // The remote-headed tuple is stored locally for provenance…
        assert!(engine.contains(&shipped));
        // …but must not feed node 2's own rule evaluation: node 2 must not
        // compute node 1's bestCost.
        assert!(!engine.contains(&Tuple::new(
            "bestCost",
            NodeId(1),
            vec![Value::node(3u64), Value::Int(5)]
        )));
        // A derive vertex for the remote head is produced locally (Fig. 2).
        assert!(outputs
            .iter()
            .any(|o| matches!(o, SmOutput::Derive { tuple, .. } if *tuple == shipped)));
    }

    #[test]
    fn received_tuple_feeds_local_rules() {
        let mut engine = Engine::new(NodeId(1), mincost_rules());
        engine.handle(SmInput::InsertBase(link(1, 4, 10)));
        assert!(engine.contains(&best_cost(1, 4, 10)));
        // A cheaper remote-derived cost arrives; bestCost must improve.
        let remote_cost = Tuple::new(
            "cost",
            NodeId(1),
            vec![Value::node(4u64), Value::node(2u64), Value::Int(3)],
        );
        let outputs = engine.handle(SmInput::Receive {
            from: NodeId(2),
            delta: TupleDelta::plus(remote_cost),
        });
        assert!(engine.contains(&best_cost(1, 4, 3)));
        assert!(!engine.contains(&best_cost(1, 4, 10)));
        assert!(outputs
            .iter()
            .any(|o| matches!(o, SmOutput::Underive { tuple, .. } if *tuple == best_cost(1, 4, 10))));
        assert!(outputs
            .iter()
            .any(|o| matches!(o, SmOutput::Derive { tuple, .. } if *tuple == best_cost(1, 4, 3))));
    }

    #[test]
    fn deleting_base_tuple_cascades() {
        let mut engine = Engine::new(NodeId(1), mincost_rules());
        engine.handle(SmInput::InsertBase(link(1, 2, 5)));
        assert!(engine.contains(&best_cost(1, 2, 5)));
        let outputs = engine.handle(SmInput::DeleteBase(link(1, 2, 5)));
        assert!(!engine.contains(&best_cost(1, 2, 5)));
        assert!(!engine.contains(&Tuple::new(
            "cost",
            NodeId(1),
            vec![Value::node(2u64), Value::node(2u64), Value::Int(5)]
        )));
        assert!(outputs
            .iter()
            .any(|o| matches!(o, SmOutput::Underive { rule, .. } if rule == "R3")));
    }

    #[test]
    fn minus_notification_retracts_believed_support() {
        let mut engine = Engine::new(NodeId(1), mincost_rules());
        let remote_cost = Tuple::new(
            "cost",
            NodeId(1),
            vec![Value::node(4u64), Value::node(2u64), Value::Int(3)],
        );
        engine.handle(SmInput::Receive {
            from: NodeId(2),
            delta: TupleDelta::plus(remote_cost.clone()),
        });
        assert!(engine.contains(&best_cost(1, 4, 3)));
        engine.handle(SmInput::Receive {
            from: NodeId(2),
            delta: TupleDelta::minus(remote_cost),
        });
        assert!(!engine.contains(&best_cost(1, 4, 3)));
    }

    #[test]
    fn duplicate_insert_is_reference_counted() {
        let mut engine = Engine::new(NodeId(1), mincost_rules());
        let first = engine.handle(SmInput::InsertBase(link(1, 2, 5)));
        let second = engine.handle(SmInput::InsertBase(link(1, 2, 5)));
        assert!(!first.is_empty());
        assert!(second.is_empty(), "second identical insert should not re-derive");
        engine.handle(SmInput::DeleteBase(link(1, 2, 5)));
        assert!(
            engine.contains(&best_cost(1, 2, 5)),
            "still supported by the remaining base copy"
        );
        engine.handle(SmInput::DeleteBase(link(1, 2, 5)));
        assert!(!engine.contains(&best_cost(1, 2, 5)));
    }

    #[test]
    fn reinsertion_after_deletion_rederives() {
        let mut engine = Engine::new(NodeId(1), mincost_rules());
        engine.handle(SmInput::InsertBase(link(1, 2, 5)));
        engine.handle(SmInput::DeleteBase(link(1, 2, 5)));
        let outputs = engine.handle(SmInput::InsertBase(link(1, 2, 5)));
        assert!(engine.contains(&best_cost(1, 2, 5)));
        assert!(outputs
            .iter()
            .any(|o| matches!(o, SmOutput::Derive { rule, .. } if rule == "R3")));
    }

    #[test]
    fn aggregate_switches_to_next_best_on_removal() {
        let mut engine = Engine::new(NodeId(1), mincost_rules());
        engine.handle(SmInput::InsertBase(link(1, 2, 5)));
        let cheap = Tuple::new(
            "cost",
            NodeId(1),
            vec![Value::node(2u64), Value::node(3u64), Value::Int(2)],
        );
        engine.handle(SmInput::Receive {
            from: NodeId(3),
            delta: TupleDelta::plus(cheap.clone()),
        });
        assert!(engine.contains(&best_cost(1, 2, 2)));
        engine.handle(SmInput::Receive {
            from: NodeId(3),
            delta: TupleDelta::minus(cheap),
        });
        assert!(engine.contains(&best_cost(1, 2, 5)), "falls back to the direct link");
    }

    #[test]
    fn maybe_rule_requires_guard() {
        let maybe = Rule::maybe(
            "M1",
            Atom::new("adv", Term::var("X"), vec![Term::var("P")]),
            vec![Atom::new("route", Term::var("X"), vec![Term::var("P")])],
            vec![],
        );
        let ruleset = RuleSet::new(vec![maybe]).expect("valid");
        let mut engine = Engine::new(NodeId(1), ruleset);
        let route = Tuple::new("route", NodeId(1), vec![Value::str("p1")]);
        engine.handle(SmInput::InsertBase(route));
        assert!(
            !engine.contains(&Tuple::new("adv", NodeId(1), vec![Value::str("p1")])),
            "maybe rule must not fire on its own"
        );
        let guard = engine.maybe_guard("M1", vec![Value::str("p1")]);
        let outputs = engine.handle(SmInput::InsertBase(guard));
        assert!(engine.contains(&Tuple::new("adv", NodeId(1), vec![Value::str("p1")])));
        assert!(outputs
            .iter()
            .any(|o| matches!(o, SmOutput::Derive { rule, .. } if rule == "M1")));
    }

    #[test]
    fn fresh_machine_starts_empty() {
        let mut engine = Engine::new(NodeId(1), mincost_rules());
        engine.handle(SmInput::InsertBase(link(1, 2, 5)));
        let fresh = engine.fresh();
        assert!(fresh.current_tuples().is_empty());
        assert_eq!(engine.current_tuples().len(), 3); // link, cost, bestCost
    }

    #[test]
    fn determinism_same_inputs_same_outputs() {
        let inputs = [
            SmInput::InsertBase(link(1, 2, 5)),
            SmInput::InsertBase(link(1, 3, 2)),
            SmInput::Receive {
                from: NodeId(3),
                delta: TupleDelta::plus(Tuple::new(
                    "cost",
                    NodeId(1),
                    vec![Value::node(2u64), Value::node(3u64), Value::Int(4)],
                )),
            },
            SmInput::DeleteBase(link(1, 2, 5)),
        ];
        let mut a = Engine::new(NodeId(1), mincost_rules());
        let mut b = Engine::new(NodeId(1), mincost_rules());
        let out_a: Vec<_> = inputs.iter().cloned().flat_map(|i| a.handle(i)).collect();
        let out_b: Vec<_> = inputs.iter().cloned().flat_map(|i| b.handle(i)).collect();
        assert_eq!(out_a, out_b);
        assert_eq!(a.current_tuples(), b.current_tuples());
        assert_eq!(a.eval_metrics(), b.eval_metrics(), "counters are deterministic too");
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        // Drive a machine into a state with base, derived and believed
        // support plus aggregate witnesses, snapshot it, restore into a fresh
        // copy, and check that both machines react identically from there on.
        let mut original = Engine::new(NodeId(1), mincost_rules());
        original.handle(SmInput::InsertBase(link(1, 2, 5)));
        original.handle(SmInput::InsertBase(link(1, 3, 2)));
        original.handle(SmInput::Receive {
            from: NodeId(2),
            delta: TupleDelta::plus(Tuple::new(
                "cost",
                NodeId(1),
                vec![Value::node(4u64), Value::node(2u64), Value::Int(3)],
            )),
        });
        let snapshot = original.snapshot().expect("engine supports snapshots");
        let restored = Engine::new(NodeId(1), mincost_rules())
            .restore(&snapshot)
            .expect("restore");
        assert_eq!(restored.current_tuples(), original.current_tuples());
        assert_eq!(restored.snapshot(), Some(snapshot), "snapshot is deterministic");

        // Both react identically to the same further inputs (incl. a delete
        // that exercises the restored derivation/dependency indexes).
        let mut restored = restored;
        let followups = [
            SmInput::DeleteBase(link(1, 2, 5)),
            SmInput::InsertBase(link(1, 2, 1)),
            SmInput::Receive {
                from: NodeId(2),
                delta: TupleDelta::minus(Tuple::new(
                    "cost",
                    NodeId(1),
                    vec![Value::node(4u64), Value::node(2u64), Value::Int(3)],
                )),
            },
        ];
        for input in followups {
            assert_eq!(restored.handle(input.clone()), original.handle(input));
        }
        assert_eq!(restored.current_tuples(), original.current_tuples());
    }

    #[test]
    fn restore_rejects_malformed_snapshots() {
        let engine = Engine::new(NodeId(1), mincost_rules());
        assert!(engine.restore(b"garbage").is_err());
        let mut engine2 = Engine::new(NodeId(1), mincost_rules());
        engine2.handle(SmInput::InsertBase(link(1, 2, 5)));
        let mut bytes = engine2.snapshot().unwrap();
        bytes.push(0); // trailing garbage
        assert!(engine.restore(&bytes).is_err());
        bytes.truncate(bytes.len() - 10);
        assert!(engine.restore(&bytes).is_err());
    }

    #[test]
    fn ruleset_rejects_non_localizable_rules() {
        let bad = Rule::standard(
            "B",
            Atom::new("x", Term::var("A"), vec![]),
            vec![
                Atom::new("p", Term::var("A"), vec![Term::var("V")]),
                Atom::new("q", Term::var("B"), vec![Term::var("V")]),
            ],
            vec![],
        );
        assert!(RuleSet::new(vec![bad]).is_err());
    }

    #[test]
    fn ruleset_rejects_empty_body() {
        let bad = Rule::standard("B", Atom::new("x", Term::var("A"), vec![]), vec![], vec![]);
        assert!(RuleSet::new(vec![bad]).is_err());
    }

    #[test]
    fn add_rule_seeds_existing_state_and_stays_in_lockstep() {
        let mut indexed = Engine::new(NodeId(1), mincost_rules());
        let mut naive = NaiveEngine::new(NodeId(1), mincost_rules());
        for input in [SmInput::InsertBase(link(1, 2, 5)), SmInput::InsertBase(link(1, 3, 2))] {
            indexed.handle(input.clone());
            naive.handle(input);
        }
        // A standard rule over existing relations: derivations are seeded
        // from the current store, not just from future deltas.
        let reach = Rule::standard(
            "R4",
            Atom::new("reach", Term::var("X"), vec![Term::var("Y")]),
            vec![Atom::new("link", Term::var("X"), vec![Term::var("Y"), Term::var("K")])],
            vec![],
        );
        let out_indexed = indexed.add_rule(reach.clone()).expect("accepted");
        let out_naive = naive.add_rule(reach).expect("accepted");
        assert_eq!(out_indexed, out_naive, "add_rule outputs must match the naive oracle");
        assert!(out_indexed
            .iter()
            .any(|o| matches!(o, SmOutput::Derive { rule, .. } if rule == "R4")));
        assert!(indexed.contains(&Tuple::new("reach", NodeId(1), vec![Value::node(2u64)])));

        // An aggregation rule: the group winners are computed over the
        // existing body tuples immediately.
        let worst = Rule::aggregate(
            "R5",
            Atom::new("worstCost", Term::var("X"), vec![Term::var("Y"), Term::var("K")]),
            Atom::new(
                "cost",
                Term::var("X"),
                vec![Term::var("Y"), Term::var("Z"), Term::var("K")],
            ),
            AggKind::Max,
            "K",
        );
        let out_indexed = indexed.add_rule(worst.clone()).expect("accepted");
        let out_naive = naive.add_rule(worst).expect("accepted");
        assert_eq!(out_indexed, out_naive);
        assert!(indexed.contains(&Tuple::new(
            "worstCost",
            NodeId(1),
            vec![Value::node(2u64), Value::Int(5)],
        )));

        // Both engines keep reacting identically after the additions.
        for input in [SmInput::DeleteBase(link(1, 2, 5)), SmInput::InsertBase(link(1, 4, 1))] {
            assert_eq!(indexed.handle(input.clone()), naive.handle(input));
        }
        assert_eq!(indexed.current_tuples(), naive.current_tuples());
        assert_eq!(indexed.snapshot(), naive.snapshot());
    }

    #[test]
    fn add_rule_rejects_bad_programs_with_typed_errors() {
        let mut engine = Engine::new(NodeId(1), mincost_rules());
        // Duplicate rule id (satellite bugfix: used to be silently accepted).
        let dup = Rule::standard(
            "R1",
            Atom::new("x", Term::var("A"), vec![]),
            vec![Atom::new("link", Term::var("A"), vec![Term::var("B"), Term::var("K")])],
            vec![],
        );
        let err = engine.add_rule(dup).expect_err("duplicate id must be refused");
        assert!(err.diagnostics.iter().any(|d| d.code == "RC0701"), "{err}");

        // Unsafe head variable.
        let unsafe_rule = Rule::standard(
            "R9",
            Atom::new("x", Term::var("A"), vec![Term::var("Z")]),
            vec![Atom::new("link", Term::var("A"), vec![Term::var("B"), Term::var("K")])],
            vec![],
        );
        let err = engine
            .add_rule(unsafe_rule.clone())
            .expect_err("unsafe rule must be refused");
        assert!(err.diagnostics.iter().any(|d| d.code == "RC0101"), "{err}");

        // The naive engine refuses identically, and neither engine mutated
        // its rule set on the failed attempts.
        let mut naive = NaiveEngine::new(NodeId(1), mincost_rules());
        let naive_err = naive.add_rule(unsafe_rule).expect_err("same rejection");
        assert_eq!(err, naive_err);
        assert_eq!(engine.ruleset.rules().len(), 3);
        engine.handle(SmInput::InsertBase(link(1, 2, 5)));
        assert!(engine.contains(&best_cost(1, 2, 5)), "engine still evaluates normally");
    }

    // ----- indexed-vs-naive differential coverage ---------------------------

    /// Tiny deterministic generator (SplitMix64) for the differential tests.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Random mincost workload: the indexed engine and the retained naive
    /// scan engine must emit identical outputs, store identical tuples and
    /// encode identical snapshot bytes at every single step.
    #[test]
    fn differential_indexed_matches_naive_scan_reference() {
        for seed in 0..4u64 {
            let mut rng = Rng(0xc0ffee ^ seed);
            let mut indexed = Engine::new(NodeId(1), mincost_rules());
            let mut naive = NaiveEngine::new(NodeId(1), mincost_rules());
            let mut inserted: Vec<SmInput> = Vec::new();
            for step in 0..120 {
                let input = match rng.below(4) {
                    // Delete or re-insert something we already fed in.
                    0 if !inserted.is_empty() => {
                        let pick = inserted[rng.below(inserted.len() as u64) as usize].clone();
                        match pick {
                            SmInput::InsertBase(t) => SmInput::DeleteBase(t),
                            SmInput::Receive { from, delta } => SmInput::Receive {
                                from,
                                delta: TupleDelta::minus(delta.tuple),
                            },
                            other => other,
                        }
                    }
                    1 => {
                        let input = SmInput::Receive {
                            from: NodeId(2 + rng.below(2)),
                            delta: TupleDelta::plus(Tuple::new(
                                "cost",
                                NodeId(1),
                                vec![
                                    Value::node(rng.below(5)),
                                    Value::node(2 + rng.below(3)),
                                    Value::Int(1 + rng.below(9) as i64),
                                ],
                            )),
                        };
                        inserted.push(input.clone());
                        input
                    }
                    _ => {
                        let input = SmInput::InsertBase(link(1, 2 + rng.below(4), 1 + rng.below(9) as i64));
                        inserted.push(input.clone());
                        input
                    }
                };
                let out_indexed = indexed.handle(input.clone());
                let out_naive = naive.handle(input.clone());
                assert_eq!(
                    out_indexed, out_naive,
                    "seed {seed} step {step}: outputs diverge on {input:?}"
                );
                assert_eq!(
                    indexed.current_tuples(),
                    naive.current_tuples(),
                    "seed {seed} step {step}: stored tuples diverge"
                );
                assert_eq!(
                    indexed.snapshot(),
                    naive.snapshot(),
                    "seed {seed} step {step}: snapshot bytes diverge"
                );
            }
        }
    }

    /// Property: any random program the static analyzer accepts can be
    /// loaded and driven — by both engines, in lockstep, without panics —
    /// including rules added mid-run with `add_rule`.
    ///
    /// Programs draw from a fixed vocabulary (`p/1`, `q/2`, `r/2`, all-Int
    /// columns, one shared location variable) so generated rules join,
    /// recurse and feed each other; optional head arithmetic is always
    /// paired with an ordering guard (`E := V + 1, E < 8`) so accepted
    /// recursion through it stays bounded at runtime, exercising exactly
    /// the boundedness reasoning RC0302 encodes.  Candidate programs the
    /// analyzer rejects must fail *typed* (never panic) — that rejection
    /// path is asserted too.
    #[test]
    fn property_analyzer_clean_random_programs_stay_in_lockstep() {
        const RELS: [(&str, usize); 3] = [("p", 1), ("q", 2), ("r", 2)];
        const VARS: [&str; 4] = ["A", "B", "C", "D"];

        fn gen_rule(rng: &mut Rng, id: String) -> Rule {
            let n_atoms = 1 + rng.below(2) as usize;
            let mut bound: Vec<&str> = Vec::new();
            let mut body = Vec::new();
            for _ in 0..n_atoms {
                let (rel, arity) = RELS[rng.below(3) as usize];
                let args = (0..arity)
                    .map(|_| {
                        if rng.below(4) == 0 {
                            Term::val(Value::Int(rng.below(4) as i64))
                        } else {
                            let v = VARS[rng.below(4) as usize];
                            bound.push(v);
                            Term::var(v)
                        }
                    })
                    .collect();
                body.push(Atom::new(rel, Term::var("L"), args));
            }
            let mut constraints = Vec::new();
            let mut derived = None;
            if !bound.is_empty() && rng.below(3) == 0 {
                let v = bound[rng.below(bound.len() as u64) as usize];
                constraints.push(Constraint::Assign {
                    var: "E".into(),
                    expr: Expr::var(v) + Expr::val(Value::Int(1)),
                });
                constraints.push(Constraint::Compare {
                    lhs: Expr::var("E"),
                    op: CmpOp::Lt,
                    rhs: Expr::val(Value::Int(8)),
                });
                derived = Some("E");
            }
            let (head_rel, head_arity) = RELS[rng.below(3) as usize];
            let head_args = (0..head_arity)
                .map(|_| match derived {
                    Some(e) if rng.below(2) == 0 => Term::var(e),
                    _ if bound.is_empty() || rng.below(4) == 0 => Term::val(Value::Int(rng.below(4) as i64)),
                    _ => Term::var(bound[rng.below(bound.len() as u64) as usize]),
                })
                .collect();
            Rule::standard(id, Atom::new(head_rel, Term::var("L"), head_args), body, constraints)
        }

        fn rand_base(rng: &mut Rng) -> Tuple {
            let (rel, arity) = RELS[rng.below(3) as usize];
            let args = (0..arity).map(|_| Value::Int(rng.below(4) as i64)).collect();
            Tuple::new(rel, NodeId(1), args)
        }

        let mut accepted = 0usize;
        for seed in 0..24u64 {
            let mut rng = Rng(0xfeed_f00d ^ seed.wrapping_mul(0x9e37_79b9));
            let count = 2 + rng.below(2);
            let candidate: Vec<Rule> = (0..count).map(|i| gen_rule(&mut rng, format!("G{i}"))).collect();
            if crate::analysis::has_errors(&analyze(&candidate)) {
                // A rejected program must fail with a typed error, not panic.
                assert!(RuleSet::new(candidate).is_err(), "seed {seed}");
                continue;
            }
            accepted += 1;
            let ruleset = |rules: Vec<Rule>| RuleSet::new(rules).expect("analyzer-clean");
            let mut indexed = Engine::new(NodeId(1), ruleset(candidate.clone()));
            let mut naive = NaiveEngine::new(NodeId(1), ruleset(candidate));
            let mut inserted: Vec<Tuple> = Vec::new();
            for step in 0..60 {
                if step == 20 || step == 40 {
                    // Mid-run additions: a random standard rule, then a min
                    // aggregate over live state.  Both engines must agree on
                    // acceptance (or rejection) and stay in lockstep after.
                    let added = if step == 40 {
                        Rule::aggregate(
                            "M40",
                            Atom::new("lo", Term::var("L"), vec![Term::var("A"), Term::var("B")]),
                            Atom::new("q", Term::var("L"), vec![Term::var("A"), Term::var("B")]),
                            AggKind::Min,
                            "B",
                        )
                    } else {
                        gen_rule(&mut rng, format!("X{step}"))
                    };
                    let a = indexed.add_rule(added.clone());
                    let b = naive.add_rule(added);
                    match (&a, &b) {
                        (Ok(out_a), Ok(out_b)) => {
                            assert_eq!(out_a, out_b, "seed {seed} step {step}: add_rule outputs diverge");
                        }
                        (Err(ea), Err(eb)) => {
                            assert_eq!(ea, eb, "seed {seed} step {step}: rejections diverge");
                        }
                        _ => panic!("seed {seed} step {step}: engines disagree on add_rule"),
                    }
                }
                let input = if !inserted.is_empty() && rng.below(4) == 0 {
                    let pick = inserted[rng.below(inserted.len() as u64) as usize].clone();
                    SmInput::DeleteBase(pick)
                } else {
                    let tuple = rand_base(&mut rng);
                    inserted.push(tuple.clone());
                    SmInput::InsertBase(tuple)
                };
                let out_indexed = indexed.handle(input.clone());
                let out_naive = naive.handle(input.clone());
                assert_eq!(
                    out_indexed, out_naive,
                    "seed {seed} step {step}: outputs diverge on {input:?}"
                );
                assert_eq!(
                    indexed.current_tuples(),
                    naive.current_tuples(),
                    "seed {seed} step {step}: stored tuples diverge"
                );
            }
            assert_eq!(indexed.snapshot(), naive.snapshot(), "seed {seed}: snapshots diverge");
        }
        assert!(
            accepted >= 12,
            "generator too conservative: only {accepted}/24 programs accepted"
        );
    }

    /// Snapshots cross between the engines in both directions: state built on
    /// one restores into the other, with indexes rebuilt, and the pair stays
    /// in lockstep afterwards.
    #[test]
    fn snapshots_are_interchangeable_between_engines() {
        let mut indexed = Engine::new(NodeId(1), mincost_rules());
        for (to, k) in [(2u64, 5i64), (3, 2), (4, 7)] {
            indexed.handle(SmInput::InsertBase(link(1, to, k)));
        }
        let bytes = indexed.snapshot().expect("snapshot");

        // Indexed → naive.
        let naive_probe = NaiveEngine::new(NodeId(1), mincost_rules());
        let mut naive = naive_probe.restore_concrete(&bytes).expect("restore into naive");
        assert_eq!(naive.snapshot(), Some(bytes.clone()), "codec is byte-compatible");

        // Naive → indexed (exercises the index rebuild on restore).
        let mut roundtripped = Engine::new(NodeId(1), mincost_rules())
            .restore(&naive.snapshot().expect("snapshot"))
            .expect("restore into indexed");
        assert_eq!(roundtripped.current_tuples(), indexed.current_tuples());

        // The rebuilt indexes answer the same joins: drive both forward.
        for input in [SmInput::DeleteBase(link(1, 2, 5)), SmInput::InsertBase(link(1, 5, 1))] {
            assert_eq!(roundtripped.handle(input.clone()), naive.handle(input));
        }
        assert_eq!(roundtripped.current_tuples(), naive.current_tuples());
    }

    /// The per-rule counters actually reflect indexing: a probe for a bound
    /// column must not enumerate unrelated candidates from the same relation.
    #[test]
    fn metrics_show_index_selectivity() {
        let mut engine = Engine::new(NodeId(1), mincost_rules());
        // 50 links out of node 1; each insertion triggers R1 (which has a
        // single body atom, the trigger itself) and R2 whose second body atom
        // probes bestCost by its bound first column.
        for to in 2..52u64 {
            engine.handle(SmInput::InsertBase(link(1, to, 10)));
        }
        let metrics = engine.eval_metrics();
        assert!(metrics.rules.contains_key("R1"), "R1 fired: {metrics:?}");
        let r1 = &metrics.rules["R1"];
        assert_eq!(r1.fires, 50);
        let r3 = &metrics.rules["R3"];
        assert!(r3.fires >= 50, "one bestCost per destination: {metrics:?}");
        // R2 joins link(@B,C,K1) with bestCost(@B,D,K2): on this star
        // topology every probe is index-narrowed, so the candidate count must
        // stay far below the naive cost of 50 × store-size scans.
        let r2 = &metrics.rules["R2"];
        assert!(r2.probes > 0, "R2 must have probed: {metrics:?}");
        assert!(
            r2.candidates <= 10_000,
            "index probes must not degenerate to full scans: {metrics:?}"
        );
    }

    /// Readers hold a consistent snapshot while the engine keeps evaluating.
    #[test]
    fn store_reader_is_stable_across_engine_writes() {
        let mut engine = Engine::new(NodeId(1), mincost_rules());
        engine.handle(SmInput::InsertBase(link(1, 2, 5)));
        let reader = engine.reader();
        let seen_before = reader.current_tuples();
        engine.handle(SmInput::InsertBase(link(1, 3, 1)));
        engine.handle(SmInput::DeleteBase(link(1, 2, 5)));
        assert_eq!(reader.current_tuples(), seen_before, "reader view is immutable");
        assert_ne!(engine.current_tuples(), seen_before, "writer advanced");
    }
}

//! # snp-datalog — the tuple / derivation-rule system model
//!
//! Section 3.1 of the SNP paper models the primary system in the style used
//! by declarative networking: node state is a set of *tuples*, and the
//! algorithm is a set of *derivation rules* of the form
//! `τ@n ← τ1@n1 ∧ τ2@n2 ∧ … ∧ τk@nk`.  This crate implements that model:
//!
//! * [`value`] / [`tuple`](mod@tuple) — the data model ([`Value`], [`Tuple`]).
//! * [`rule`] — derivation rules, `maybe` rules (§3.4), aggregation rules and
//!   the constraint/expression language.
//! * [`parser`] — a small text syntax ("DDlog"-style) for writing rule sets.
//! * [`machine`] — the deterministic state-machine interface `A_i`
//!   (Appendix A.2): inputs are base-tuple insertions/deletions and received
//!   tuple notifications; outputs are derivations, underivations and messages.
//! * [`engine`] — an incremental, reference-counted evaluation engine that
//!   implements [`machine::StateMachine`] for a rule set.  Rules are
//!   *localized*: all body atoms of a rule must live on one node, and if the
//!   head lives elsewhere the derived tuple is shipped there as a `+τ` / `-τ`
//!   notification, exactly as in the paper's MinCost example (Figure 2).
//! * [`store`] — the multi-index, copy-on-write tuple store behind the
//!   engine: per-relation and per-(relation, column, value) indexes over an
//!   `Arc`-swapped snapshot give lock-free readers and O(k) join probes.
//! * [`naive`] — the retained naive-scan reference engine, kept as the
//!   differential-test oracle and benchmark baseline for the indexed engine.
//! * [`snapshot`] — the deterministic byte codec machines use to serialize
//!   their complete state when a log epoch is sealed, so queriers can restore
//!   the state and replay only the suffix after a checkpoint (§5.6).
//! * [`absence`] — negative provenance: for a tuple that is *not* derivable,
//!   enumerate the rule instantiations that could have derived it over the
//!   known constant domain and report each one's first missing or failed
//!   precondition (the `why_absent` query class).
//!
//! The provenance of every derivation (rule id plus instantiated body tuples)
//! is reported on the outputs, which is what `snp-graph`'s graph construction
//! algorithm consumes.

#![forbid(unsafe_code)]
// Unit tests may unwrap: a panic is the assertion.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]
#![warn(missing_docs)]

pub mod absence;
pub mod analysis;
pub mod engine;
pub mod machine;
pub mod naive;
pub mod parser;
pub mod rule;
pub mod snapshot;
pub mod store;
pub mod tuple;
pub mod value;

pub use absence::{trace_absence, AbsenceWitness};
pub use analysis::{analyze, analyze_with_facts, Diagnostic, Pass, ProgramError, Severity, Span};
pub use engine::{Engine, RuleSet};
pub use machine::{MachineFactory, Polarity, SmInput, SmOutput, StateMachine, TupleDelta};
pub use naive::NaiveEngine;
pub use rule::{AggKind, Atom, Constraint, Expr, Rule, RuleKind, Term};
pub use snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
pub use snp_crypto::keys::NodeId;
pub use store::{EvalMetrics, RuleEval, StoreSnapshot, TupleStore};
pub use tuple::Tuple;
pub use value::Value;

//! The retained naive-scan reference engine.
//!
//! This is the pre-index implementation of [`crate::engine::Engine`],
//! preserved verbatim: `join_rest` / `derivations_for` / `refresh_aggregate`
//! walk the entire flat `BTreeMap<Tuple, Support>` store per body atom per
//! trigger, making rule firing O(store × body).
//!
//! It exists for two reasons and must not be "improved":
//!
//! * **Differential oracle** — the indexed engine's outputs, stored tuples
//!   and snapshot bytes are asserted identical to this engine's across
//!   randomized workloads and every benchmark scenario (the index rewrite
//!   must be observationally invisible).
//! * **Benchmark baseline** — `BENCH_datalog.json` reports the indexed
//!   engine's speedup over this implementation, and `bench_gate` enforces a
//!   floor on that ratio.
//!
//! The snapshot codec is shared with the indexed engine byte-for-byte, so a
//! state built on either engine restores into the other.

use crate::analysis::ProgramError;
use crate::engine::RuleSet;
use crate::machine::{Polarity, SmInput, SmOutput, StateMachine, TupleDelta};
use crate::rule::{AggKind, Bindings, Rule};
use crate::snapshot::{SnapshotReader, SnapshotWriter};
use crate::tuple::Tuple;
use crate::value::Value;
use snp_crypto::keys::NodeId;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A recorded derivation: `head` was derived via `rule` from `body`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Derivation {
    rule: String,
    head: Tuple,
    body: Vec<Tuple>,
}

/// Why a tuple is present on the node.
#[derive(Clone, Debug, Default)]
struct Support {
    base_count: u32,
    derivation_count: u32,
    /// Believed copies per sender.
    believed: BTreeMap<NodeId, u32>,
}

impl Support {
    fn total(&self) -> u32 {
        self.base_count + self.derivation_count + self.believed.values().sum::<u32>()
    }
}

/// A change propagated through the work list.
#[derive(Clone, Debug)]
enum Change {
    Appeared(Tuple),
    Disappeared(Tuple),
}

/// The naive-scan incremental evaluation engine for one node (reference
/// implementation; see the module docs).
#[derive(Debug)]
pub struct NaiveEngine {
    node: NodeId,
    ruleset: RuleSet,
    /// Support for every tuple currently present at this node.
    store: BTreeMap<Tuple, Support>,
    /// All recorded derivations made at this node, keyed by head.
    derivations: BTreeMap<Tuple, BTreeSet<Derivation>>,
    /// Reverse index: body tuple → derivations that use it.
    deps: BTreeMap<Tuple, BTreeSet<Derivation>>,
    /// For each aggregation rule id, the currently derived heads and the body
    /// tuple that justifies each.
    agg_current: BTreeMap<String, BTreeMap<Tuple, Tuple>>,
}

impl NaiveEngine {
    /// Create a naive engine for `node` running `ruleset`.
    pub fn new(node: NodeId, ruleset: RuleSet) -> NaiveEngine {
        NaiveEngine {
            node,
            ruleset,
            store: BTreeMap::new(),
            derivations: BTreeMap::new(),
            deps: BTreeMap::new(),
            agg_current: BTreeMap::new(),
        }
    }

    /// The node this engine runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Whether a tuple is currently present on this node.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.store.get(tuple).map(|s| s.total() > 0).unwrap_or(false)
    }

    /// All present tuples of a relation (full-store scan, by design).
    pub fn tuples_of(&self, relation: &str) -> Vec<Tuple> {
        self.store
            .iter()
            .filter(|(t, s)| t.relation == relation && s.total() > 0)
            .map(|(t, _)| t.clone())
            .collect()
    }

    /// Restore a snapshot into a concrete `NaiveEngine` (the trait method
    /// type-erases; benchmarks need the concrete type to time the scan path).
    pub fn restore_concrete(&self, snapshot: &[u8]) -> Result<NaiveEngine, String> {
        let mut r = SnapshotReader::new(snapshot);
        let mut engine = NaiveEngine::new(self.node, self.ruleset.clone());
        (|| {
            let stores = r.read_len()?;
            for _ in 0..stores {
                let tuple = r.tuple()?;
                let mut support = Support {
                    base_count: r.u32()?,
                    derivation_count: r.u32()?,
                    believed: BTreeMap::new(),
                };
                let peers = r.read_len()?;
                for _ in 0..peers {
                    let peer = r.node()?;
                    support.believed.insert(peer, r.u32()?);
                }
                engine.store.insert(tuple, support);
            }
            let derivation_count = r.read_len()?;
            for _ in 0..derivation_count {
                let rule = r.str()?;
                let head = r.tuple()?;
                let body_len = r.read_len()?;
                let mut body = Vec::with_capacity(body_len);
                for _ in 0..body_len {
                    body.push(r.tuple()?);
                }
                let derivation = Derivation { rule, head, body };
                for body_tuple in &derivation.body {
                    engine
                        .deps
                        .entry(body_tuple.clone())
                        .or_default()
                        .insert(derivation.clone());
                }
                engine
                    .derivations
                    .entry(derivation.head.clone())
                    .or_default()
                    .insert(derivation);
            }
            let agg_rules = r.read_len()?;
            for _ in 0..agg_rules {
                let rule_id = r.str()?;
                let heads = r.read_len()?;
                let entry = engine.agg_current.entry(rule_id).or_default();
                for _ in 0..heads {
                    let head = r.tuple()?;
                    let witness = r.tuple()?;
                    entry.insert(head, witness);
                }
            }
            r.expect_exhausted()
        })()
        .map_err(|e| e.to_string())?;
        Ok(engine)
    }

    /// Add one rule to the running engine — the naive mirror of
    /// [`crate::engine::Engine::add_rule`], kept in lockstep for the
    /// differential tests: same typed rejection, same seeded derivations
    /// (sorted and deduplicated), same propagation.
    pub fn add_rule(&mut self, rule: Rule) -> Result<Vec<SmOutput>, ProgramError> {
        let localized = self.ruleset.add_rule(rule)?;
        let mut outputs = Vec::new();
        let mut worklist = VecDeque::new();
        if localized.aggregate.is_some() {
            self.refresh_aggregate(&localized, &mut outputs, &mut worklist);
        } else {
            let mut found = Vec::new();
            for (mut complete, matched) in self.join_rest(&localized, localized.body.len(), Bindings::new()) {
                if !localized.constraints.iter().all(|c| c.apply(&mut complete)) {
                    continue;
                }
                let Some(head) = localized.head.instantiate(&complete) else {
                    continue;
                };
                let body: Vec<Tuple> = matched.into_iter().map(|t| t.expect("all positions matched")).collect();
                found.push(Derivation {
                    rule: localized.id.clone(),
                    head,
                    body,
                });
            }
            found.sort();
            found.dedup();
            for derivation in found {
                self.record_derivation(derivation, &mut outputs, &mut worklist);
            }
        }
        outputs.extend(self.process(worklist));
        Ok(outputs)
    }

    // ----- support management -------------------------------------------------

    fn add_support(&mut self, tuple: &Tuple, f: impl FnOnce(&mut Support)) -> bool {
        let entry = self.store.entry(tuple.clone()).or_default();
        let was_absent = entry.total() == 0;
        f(entry);
        was_absent && entry.total() > 0
    }

    fn remove_support(&mut self, tuple: &Tuple, f: impl FnOnce(&mut Support)) -> bool {
        let Some(entry) = self.store.get_mut(tuple) else {
            return false;
        };
        let was_present = entry.total() > 0;
        f(entry);
        let now_absent = entry.total() == 0;
        if now_absent {
            self.store.remove(tuple);
        }
        was_present && now_absent
    }

    // ----- rule evaluation ----------------------------------------------------

    /// Join the remaining body atoms (all except `skip_index`) by scanning
    /// the whole store per atom — the O(store × body) hot loop the indexed
    /// engine replaces.
    fn join_rest(&self, rule: &Rule, skip_index: usize, bindings: Bindings) -> Vec<(Bindings, Vec<Option<Tuple>>)> {
        let mut partials: Vec<(Bindings, Vec<Option<Tuple>>)> = vec![(bindings, vec![None; rule.body.len()])];
        for (i, atom) in rule.body.iter().enumerate() {
            if i == skip_index {
                continue;
            }
            let mut next = Vec::new();
            for (bound, matched) in &partials {
                for (candidate, support) in &self.store {
                    // Rule bodies only see tuples homed at this node (NDlog
                    // localization).
                    if support.total() == 0 || candidate.relation != atom.relation || candidate.location != self.node {
                        continue;
                    }
                    let mut extended = bound.clone();
                    if atom.matches(candidate, &mut extended) {
                        let mut matched = matched.clone();
                        matched[i] = Some(candidate.clone());
                        next.push((extended, matched));
                    }
                }
            }
            partials = next;
            if partials.is_empty() {
                break;
            }
        }
        partials
    }

    /// Find all new derivations triggered by the appearance of `trigger`.
    fn derivations_for(&self, trigger: &Tuple) -> Vec<Derivation> {
        let mut found = Vec::new();
        if trigger.location != self.node {
            return found;
        }
        for rule in self.ruleset.rules() {
            if rule.aggregate.is_some() {
                continue;
            }
            for (i, atom) in rule.body.iter().enumerate() {
                if atom.relation != trigger.relation {
                    continue;
                }
                let mut bindings = Bindings::new();
                if !atom.matches(trigger, &mut bindings) {
                    continue;
                }
                for (mut complete, mut matched) in self.join_rest(rule, i, bindings) {
                    matched[i] = Some(trigger.clone());
                    if !rule.constraints.iter().all(|c| c.apply(&mut complete)) {
                        continue;
                    }
                    let Some(head) = rule.head.instantiate(&complete) else {
                        continue;
                    };
                    let body: Vec<Tuple> = matched.into_iter().map(|t| t.expect("all positions matched")).collect();
                    found.push(Derivation {
                        rule: rule.id.clone(),
                        head,
                        body,
                    });
                }
            }
        }
        found.sort();
        found.dedup();
        found
    }

    fn record_derivation(
        &mut self,
        derivation: Derivation,
        outputs: &mut Vec<SmOutput>,
        worklist: &mut VecDeque<Change>,
    ) {
        let entry = self.derivations.entry(derivation.head.clone()).or_default();
        if !entry.insert(derivation.clone()) {
            return; // already known
        }
        for body_tuple in &derivation.body {
            self.deps
                .entry(body_tuple.clone())
                .or_default()
                .insert(derivation.clone());
        }
        let appeared = self.add_support(&derivation.head, |s| s.derivation_count += 1);
        if appeared {
            outputs.push(SmOutput::Derive {
                tuple: derivation.head.clone(),
                rule: derivation.rule.clone(),
                body: derivation.body.clone(),
            });
            if derivation.head.location != self.node {
                outputs.push(SmOutput::Send {
                    to: derivation.head.location,
                    delta: TupleDelta::plus(derivation.head.clone()),
                });
            }
            worklist.push_back(Change::Appeared(derivation.head.clone()));
        }
    }

    fn retract_derivation(
        &mut self,
        derivation: &Derivation,
        outputs: &mut Vec<SmOutput>,
        worklist: &mut VecDeque<Change>,
    ) {
        let Some(entry) = self.derivations.get_mut(&derivation.head) else {
            return;
        };
        if !entry.remove(derivation) {
            return;
        }
        if entry.is_empty() {
            self.derivations.remove(&derivation.head);
        }
        for body_tuple in &derivation.body {
            if let Some(set) = self.deps.get_mut(body_tuple) {
                set.remove(derivation);
                if set.is_empty() {
                    self.deps.remove(body_tuple);
                }
            }
        }
        let disappeared = self.remove_support(&derivation.head, |s| {
            s.derivation_count = s.derivation_count.saturating_sub(1)
        });
        if disappeared {
            outputs.push(SmOutput::Underive {
                tuple: derivation.head.clone(),
                rule: derivation.rule.clone(),
                body: derivation.body.clone(),
            });
            if derivation.head.location != self.node {
                outputs.push(SmOutput::Send {
                    to: derivation.head.location,
                    delta: TupleDelta::minus(derivation.head.clone()),
                });
            }
            worklist.push_back(Change::Disappeared(derivation.head.clone()));
        }
    }

    /// Recompute an aggregation rule after its body relation changed
    /// (full-store scan, by design).
    fn refresh_aggregate(&mut self, rule: &Rule, outputs: &mut Vec<SmOutput>, worklist: &mut VecDeque<Change>) {
        let (kind, agg_var) = rule.aggregate.clone().expect("aggregate rule");
        let body_atom = &rule.body[0];

        let mut groups: BTreeMap<Tuple, (i64, Tuple, i64)> = BTreeMap::new();
        for (candidate, support) in &self.store {
            if support.total() == 0 || candidate.relation != body_atom.relation || candidate.location != self.node {
                continue;
            }
            let mut bindings = Bindings::new();
            if !body_atom.matches(candidate, &mut bindings) {
                continue;
            }
            if !rule.constraints.iter().all(|c| c.apply(&mut bindings)) {
                continue;
            }
            let Some(agg_value) = bindings.get(&agg_var).and_then(Value::as_int) else {
                continue;
            };
            let mut group_bindings = bindings.clone();
            group_bindings.insert(agg_var.clone(), Value::Int(0));
            let Some(group_key) = rule.head.instantiate(&group_bindings) else {
                continue;
            };
            let entry = groups.entry(group_key).or_insert((agg_value, candidate.clone(), 0));
            entry.2 += 1;
            let better = match kind {
                AggKind::Min => agg_value < entry.0 || (agg_value == entry.0 && *candidate < entry.1),
                AggKind::Max => agg_value > entry.0 || (agg_value == entry.0 && *candidate < entry.1),
                AggKind::Count => false,
            };
            if better {
                entry.0 = agg_value;
                entry.1 = candidate.clone();
            }
        }

        let mut new_heads: BTreeMap<Tuple, Tuple> = BTreeMap::new();
        for (group_key, (value, witness, count)) in groups {
            let mut head = group_key;
            let agg_result = match kind {
                AggKind::Min | AggKind::Max => value,
                AggKind::Count => count,
            };
            if let Some(last) = head.args.last_mut() {
                *last = Value::Int(agg_result);
            }
            new_heads.insert(head, witness);
        }

        let current = self.agg_current.entry(rule.id.clone()).or_default().clone();

        for (head, witness) in &current {
            if !new_heads.contains_key(head) {
                self.agg_current.get_mut(&rule.id).expect("entry exists").remove(head);
                let disappeared =
                    self.remove_support(head, |s| s.derivation_count = s.derivation_count.saturating_sub(1));
                if disappeared {
                    outputs.push(SmOutput::Underive {
                        tuple: head.clone(),
                        rule: rule.id.clone(),
                        body: vec![witness.clone()],
                    });
                    worklist.push_back(Change::Disappeared(head.clone()));
                }
            }
        }
        for (head, witness) in new_heads {
            if !current.contains_key(&head) {
                self.agg_current
                    .get_mut(&rule.id)
                    .expect("entry exists")
                    .insert(head.clone(), witness.clone());
                let appeared = self.add_support(&head, |s| s.derivation_count += 1);
                if appeared {
                    outputs.push(SmOutput::Derive {
                        tuple: head.clone(),
                        rule: rule.id.clone(),
                        body: vec![witness],
                    });
                    worklist.push_back(Change::Appeared(head));
                }
            }
        }
    }

    fn process(&mut self, mut worklist: VecDeque<Change>) -> Vec<SmOutput> {
        let mut outputs = Vec::new();
        let mut steps = 0usize;
        while let Some(change) = worklist.pop_front() {
            steps += 1;
            assert!(
                steps < 100_000,
                "derivation propagation did not terminate; check rules for cycles"
            );
            match change {
                Change::Appeared(tuple) => {
                    for derivation in self.derivations_for(&tuple) {
                        self.record_derivation(derivation, &mut outputs, &mut worklist);
                    }
                    let agg_rules: Vec<Rule> = self
                        .ruleset
                        .rules()
                        .iter()
                        .filter(|r| r.aggregate.is_some() && r.body[0].relation == tuple.relation)
                        .cloned()
                        .collect();
                    for rule in agg_rules {
                        self.refresh_aggregate(&rule, &mut outputs, &mut worklist);
                    }
                }
                Change::Disappeared(tuple) => {
                    let dependent: Vec<Derivation> = self
                        .deps
                        .get(&tuple)
                        .map(|s| s.iter().cloned().collect())
                        .unwrap_or_default();
                    for derivation in dependent {
                        self.retract_derivation(&derivation, &mut outputs, &mut worklist);
                    }
                    let agg_rules: Vec<Rule> = self
                        .ruleset
                        .rules()
                        .iter()
                        .filter(|r| r.aggregate.is_some() && r.body[0].relation == tuple.relation)
                        .cloned()
                        .collect();
                    for rule in agg_rules {
                        self.refresh_aggregate(&rule, &mut outputs, &mut worklist);
                    }
                }
            }
        }
        outputs
    }
}

impl StateMachine for NaiveEngine {
    fn handle(&mut self, input: SmInput) -> Vec<SmOutput> {
        let mut worklist = VecDeque::new();
        match input {
            SmInput::InsertBase(tuple) => {
                if self.add_support(&tuple, |s| s.base_count += 1) {
                    worklist.push_back(Change::Appeared(tuple));
                }
            }
            SmInput::DeleteBase(tuple) => {
                if self.remove_support(&tuple, |s| s.base_count = s.base_count.saturating_sub(1)) {
                    worklist.push_back(Change::Disappeared(tuple));
                }
            }
            SmInput::Receive { from, delta } => match delta.polarity {
                Polarity::Plus => {
                    if self.add_support(&delta.tuple, |s| *s.believed.entry(from).or_default() += 1) {
                        worklist.push_back(Change::Appeared(delta.tuple));
                    }
                }
                Polarity::Minus => {
                    if self.remove_support(&delta.tuple, |s| {
                        if let Some(count) = s.believed.get_mut(&from) {
                            *count = count.saturating_sub(1);
                            if *count == 0 {
                                s.believed.remove(&from);
                            }
                        }
                    }) {
                        worklist.push_back(Change::Disappeared(delta.tuple));
                    }
                }
            },
        }
        self.process(worklist)
    }

    fn fresh(&self) -> Box<dyn StateMachine> {
        Box::new(NaiveEngine::new(self.node, self.ruleset.clone()))
    }

    fn current_tuples(&self) -> Vec<Tuple> {
        self.store
            .iter()
            .filter(|(_, s)| s.total() > 0)
            .map(|(t, _)| t.clone())
            .collect()
    }

    /// Byte-identical to the indexed engine's snapshot of the same state.
    fn snapshot(&self) -> Option<Vec<u8>> {
        let mut w = SnapshotWriter::new();
        w.u64(self.store.len() as u64);
        for (tuple, support) in &self.store {
            w.tuple(tuple);
            w.u32(support.base_count);
            w.u32(support.derivation_count);
            w.u64(support.believed.len() as u64);
            for (peer, count) in &support.believed {
                w.node(*peer);
                w.u32(*count);
            }
        }
        let flat: Vec<&Derivation> = self.derivations.values().flatten().collect();
        w.u64(flat.len() as u64);
        for derivation in flat {
            w.str(&derivation.rule);
            w.tuple(&derivation.head);
            w.u64(derivation.body.len() as u64);
            for body in &derivation.body {
                w.tuple(body);
            }
        }
        w.u64(self.agg_current.len() as u64);
        for (rule_id, heads) in &self.agg_current {
            w.str(rule_id);
            w.u64(heads.len() as u64);
            for (head, witness) in heads {
                w.tuple(head);
                w.tuple(witness);
            }
        }
        Some(w.finish())
    }

    fn restore(&self, snapshot: &[u8]) -> Result<Box<dyn StateMachine>, String> {
        Ok(Box::new(self.restore_concrete(snapshot)?))
    }

    fn absence_of(&self, pattern: &Tuple, present: &[Tuple], peers: &[NodeId]) -> Vec<crate::absence::AbsenceWitness> {
        crate::absence::trace_absence(&self.ruleset, self.node, pattern, present, peers)
    }

    fn name(&self) -> String {
        format!("engine@{}", self.node)
    }
}

//! A small text syntax for rule sets ("DDlog"-style).
//!
//! The SNooPy prototype expresses macroqueries and application rules in
//! Distributed Datalog (§5.9).  This parser accepts a compact, line-oriented
//! syntax sufficient for the applications in this repository:
//!
//! ```text
//! # MinCost routing (§3.3)
//! R1 cost(@X, Y, Y, K)    :- link(@X, Y, K).
//! R2 cost(@C, D, B, K3)   :- link(@B, C, K1), bestCost(@B, D, K2), K3 := K1 + K2, C != D.
//! R3 bestCost(@X, Y, min<K>) :- cost(@X, Y, Z, K).
//! M1 advertise(@X, P) maybe :- route(@X, P).
//! ```
//!
//! * Upper-case identifiers are variables, lower-case identifiers and quoted
//!   strings are constants, integers are integer constants, `nN` is node N.
//! * The head location is marked with `@`; a `min<K>` / `max<K>` / `count<K>`
//!   head argument turns the rule into an aggregation.
//! * Constraints are comparisons (`=`, `!=`, `<`, `<=`, `>`, `>=`) or
//!   assignments (`X := A + B`).
//! * A `maybe` marker before `:-` produces a [`RuleKind::Maybe`] rule.

use crate::analysis::Span;
use crate::rule::{AggKind, Atom, CmpOp, Constraint, Expr, Rule, RuleKind, Term};
use crate::value::Value;
use snp_crypto::keys::NodeId;

/// Parse a whole rule program (one rule per `.`-terminated statement).
pub fn parse_program(source: &str) -> Result<Vec<Rule>, String> {
    Ok(parse_program_spanned(source)?
        .into_iter()
        .map(|(rule, _)| rule)
        .collect())
}

/// Like [`parse_program`], but also return each rule's source [`Span`]
/// (1-based line/column of the statement start) so `snp-rulecheck` can
/// attach positions to its diagnostics.  Parse errors are prefixed with the
/// offending statement's position.
pub fn parse_program_spanned(source: &str) -> Result<Vec<(Rule, Span)>, String> {
    let mut rules = Vec::new();
    for (statement, span) in split_statements(source)? {
        let rule = parse_rule(&statement).map_err(|e| format!("{span}: {e}"))?;
        rules.push((rule, span));
    }
    Ok(rules)
}

/// Split a program into `.`-terminated statements, honouring `#` comments
/// and quoted strings: a `#` or `.` inside `"…"` is content, not syntax.
/// Each statement is returned with the position of its first character.
fn split_statements(source: &str) -> Result<Vec<(String, Span)>, String> {
    let mut statements = Vec::new();
    let mut current = String::new();
    let mut start: Option<Span> = None;
    let mut in_quote = false;
    let mut in_comment = false;
    let mut line = 1usize;
    let mut col = 0usize;
    for c in source.chars() {
        if c == '\n' {
            line += 1;
            col = 0;
            in_comment = false;
            if !current.is_empty() {
                current.push(' ');
            }
            continue;
        }
        col += 1;
        if in_comment {
            continue;
        }
        match c {
            '"' => {
                in_quote = !in_quote;
                current.push(c);
            }
            '#' if !in_quote => in_comment = true,
            '.' if !in_quote => {
                if !current.trim().is_empty() {
                    let span = start.take().unwrap_or(Span { line, col });
                    statements.push((std::mem::take(&mut current), span));
                } else {
                    current.clear();
                    start = None;
                }
            }
            _ => {
                if start.is_none() && !c.is_whitespace() {
                    start = Some(Span { line, col });
                }
                current.push(c);
            }
        }
    }
    if in_quote {
        return Err(format!("line {line}: unterminated string literal"));
    }
    // A trailing statement without the final '.' is accepted, matching the
    // historical splitting behaviour.
    if !current.trim().is_empty() {
        let span = start.unwrap_or(Span { line, col });
        statements.push((current, span));
    }
    Ok(statements)
}

/// Parse a single rule of the form `ID head [maybe] :- body`.
pub fn parse_rule(statement: &str) -> Result<Rule, String> {
    let (lhs, rhs) = statement
        .split_once(":-")
        .ok_or_else(|| format!("rule must contain ':-': {statement}"))?;
    let lhs = lhs.trim();
    let rhs = rhs.trim();

    let (lhs, kind) = match lhs.strip_suffix("maybe") {
        Some(rest) => (rest.trim(), RuleKind::Maybe),
        None => (lhs, RuleKind::Standard),
    };

    // The rule id is the first whitespace-separated token before the head atom.
    let (id, head_text) = lhs
        .split_once(char::is_whitespace)
        .ok_or_else(|| format!("rule must start with an identifier: {lhs}"))?;
    let (head, aggregate) = parse_head(head_text.trim())?;

    let mut body = Vec::new();
    let mut constraints = Vec::new();
    for part in split_top_level(rhs) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if part.contains(":=") || is_comparison(part) {
            constraints.push(parse_constraint(part)?);
        } else {
            body.push(parse_atom(part)?);
        }
    }

    let mut rule = match aggregate {
        Some((agg_kind, var)) => {
            if body.len() != 1 {
                return Err(format!("aggregation rule {id} must have exactly one body atom"));
            }
            let mut r = Rule::aggregate(id, head, body.remove(0), agg_kind, var);
            r.constraints = constraints;
            r
        }
        None => Rule {
            id: id.to_string(),
            kind: RuleKind::Standard,
            head,
            body,
            constraints,
            aggregate: None,
        },
    };
    rule.kind = kind;
    Ok(rule)
}

/// Whether `text` ends in an aggregate keyword (`min`/`max`/`count`) as a
/// whole word — i.e. the `<` that follows opens an aggregate marker, not a
/// less-than comparison.
fn ends_with_agg_keyword(text: &str) -> bool {
    let text = text.trim_end();
    ["min", "max", "count"].iter().any(|kw| {
        text.strip_suffix(kw).is_some_and(|prefix| {
            prefix
                .chars()
                .next_back()
                .map_or(true, |c| !c.is_ascii_alphanumeric() && c != '_')
        })
    })
}

/// Split a rule body on commas that are not inside parentheses, quoted
/// strings, or `min<…>`-style aggregate markers.  A bare `<`/`>` comparison
/// does *not* open a bracket (the historical parser miscounted it as one,
/// so a comparison followed by a comma corrupted the split).
fn split_top_level(text: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut in_quote = false;
    let mut current = String::new();
    for c in text.chars() {
        if in_quote {
            if c == '"' {
                in_quote = false;
            }
            current.push(c);
            continue;
        }
        match c {
            '"' => {
                in_quote = true;
                current.push(c);
            }
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth -= 1;
                current.push(c);
            }
            '<' => {
                if ends_with_agg_keyword(&current) {
                    angle += 1;
                }
                current.push(c);
            }
            '>' => {
                if angle > 0 {
                    angle -= 1;
                }
                current.push(c);
            }
            ',' if depth == 0 && angle == 0 => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    parts
}

fn is_comparison(part: &str) -> bool {
    // A comparison constraint contains an operator outside parentheses and is
    // not an atom (atoms contain '(' before any operator).
    let paren = part.find('(').unwrap_or(usize::MAX);
    for op in ["!=", "<=", ">=", "=", "<", ">"] {
        if let Some(pos) = part.find(op) {
            if pos < paren {
                return true;
            }
        }
    }
    false
}

fn parse_head(text: &str) -> Result<(Atom, Option<(AggKind, String)>), String> {
    let atom = parse_atom(text)?;
    // Look for an aggregate marker in the last argument: it parses as a
    // variable named "min<K>" etc. because parse_term doesn't know about it,
    // so detect it on the raw text instead.
    let open = text.find('(').ok_or_else(|| format!("head must be an atom: {text}"))?;
    let inner = &text[open + 1..text.rfind(')').ok_or("missing )")?];
    let raw_args: Vec<String> = split_top_level(inner).iter().map(|s| s.trim().to_string()).collect();
    let mut aggregate = None;
    if let Some(last) = raw_args.last() {
        for (prefix, kind) in [
            ("min<", AggKind::Min),
            ("max<", AggKind::Max),
            ("count<", AggKind::Count),
        ] {
            if let Some(rest) = last.strip_prefix(prefix) {
                let var = rest.trim_end_matches('>').trim().to_string();
                aggregate = Some((kind, var.clone()));
            }
        }
    }
    if let Some((_, ref var)) = aggregate {
        // Replace the aggregate marker argument with the plain variable.
        let mut fixed = atom.clone();
        if let Some(last) = fixed.args.last_mut() {
            *last = Term::var(var.clone());
        }
        return Ok((fixed, aggregate));
    }
    Ok((atom, None))
}

fn parse_atom(text: &str) -> Result<Atom, String> {
    let text = text.trim();
    let open = text
        .find('(')
        .ok_or_else(|| format!("atom must have arguments: {text}"))?;
    let close = text.rfind(')').ok_or_else(|| format!("atom missing ')': {text}"))?;
    let relation = text[..open].trim();
    if relation.is_empty() {
        return Err(format!("atom missing relation name: {text}"));
    }
    let inner = &text[open + 1..close];
    let raw_args = split_top_level(inner);
    if raw_args.is_empty() {
        return Err(format!("atom must have at least the @location argument: {text}"));
    }
    let mut location = None;
    let mut args = Vec::new();
    for (i, raw) in raw_args.iter().enumerate() {
        let raw = raw.trim();
        if i == 0 {
            let loc = raw
                .strip_prefix('@')
                .ok_or_else(|| format!("first atom argument must be the @location: {text}"))?;
            location = Some(parse_term(loc)?);
        } else {
            args.push(parse_term(raw)?);
        }
    }
    Ok(Atom {
        relation: relation.to_string(),
        location: location.expect("location parsed"),
        args,
    })
}

fn parse_term(text: &str) -> Result<Term, String> {
    let text = text.trim();
    if text.is_empty() {
        return Err("empty term".to_string());
    }
    if let Some(stripped) = text.strip_prefix('"') {
        let content = stripped
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string: {text}"))?;
        return Ok(Term::val(content));
    }
    if let Ok(int) = text.parse::<i64>() {
        return Ok(Term::val(int));
    }
    if let Some(node) = text.strip_prefix('n') {
        if let Ok(id) = node.parse::<u64>() {
            return Ok(Term::Const(Value::Node(NodeId(id))));
        }
    }
    let first = text.chars().next().expect("non-empty");
    if first.is_ascii_uppercase() || first == '_' {
        Ok(Term::var(text))
    } else {
        // Lower-case bare identifiers are string constants.
        Ok(Term::val(text))
    }
}

fn parse_expr(text: &str) -> Result<Expr, String> {
    let text = text.trim();
    // Only binary +/- with left-to-right association is needed.
    if let Some(pos) = text.rfind('+') {
        let (l, r) = text.split_at(pos);
        return Ok(Expr::Add(Box::new(parse_expr(l)?), Box::new(parse_expr(&r[1..])?)));
    }
    if let Some(pos) = text.rfind('-') {
        // Avoid treating a leading minus (negative literal) as subtraction.
        if pos > 0 {
            let (l, r) = text.split_at(pos);
            return Ok(Expr::Sub(Box::new(parse_expr(l)?), Box::new(parse_expr(&r[1..])?)));
        }
    }
    Ok(Expr::Term(parse_term(text)?))
}

fn parse_constraint(text: &str) -> Result<Constraint, String> {
    let text = text.trim();
    if let Some((var, expr)) = text.split_once(":=") {
        return Ok(Constraint::Assign {
            var: var.trim().to_string(),
            expr: parse_expr(expr)?,
        });
    }
    for (symbol, op) in [
        ("!=", CmpOp::Ne),
        ("<=", CmpOp::Le),
        (">=", CmpOp::Ge),
        ("=", CmpOp::Eq),
        ("<", CmpOp::Lt),
        (">", CmpOp::Gt),
    ] {
        if let Some((l, r)) = text.split_once(symbol) {
            return Ok(Constraint::Compare {
                lhs: parse_expr(l)?,
                op,
                rhs: parse_expr(r)?,
            });
        }
    }
    Err(format!("unrecognized constraint: {text}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, RuleSet};
    use crate::machine::{SmInput, StateMachine};
    use crate::tuple::Tuple;

    const MINCOST: &str = r#"
        # MinCost routing (Section 3.3)
        R1 cost(@X, Y, Y, K)      :- link(@X, Y, K).
        R2 cost(@C, D, B, K3)     :- link(@B, C, K1), bestCost(@B, D, K2), K3 := K1 + K2, C != D.
        R3 bestCost(@X, Y, min<K>) :- cost(@X, Y, Z, K).
    "#;

    #[test]
    fn parses_mincost_program() {
        let rules = parse_program(MINCOST).expect("parse");
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].id, "R1");
        assert_eq!(rules[1].constraints.len(), 2);
        assert_eq!(rules[2].aggregate, Some((AggKind::Min, "K".to_string())));
    }

    #[test]
    fn parsed_rules_run_in_engine() {
        let rules = parse_program(MINCOST).expect("parse");
        let ruleset = RuleSet::new(rules).expect("valid");
        let mut engine = Engine::new(NodeId(1), ruleset);
        engine.handle(SmInput::InsertBase(Tuple::new(
            "link",
            NodeId(1),
            vec![Value::Node(NodeId(2)), Value::Int(7)],
        )));
        assert!(engine.contains(&Tuple::new(
            "bestCost",
            NodeId(1),
            vec![Value::Node(NodeId(2)), Value::Int(7)]
        )));
    }

    #[test]
    fn parses_maybe_rule() {
        let rule = parse_rule(r#"M1 advertise(@X, P) maybe :- route(@X, P)"#).expect("parse");
        assert_eq!(rule.kind, RuleKind::Maybe);
        assert_eq!(rule.head.relation, "advertise");
    }

    #[test]
    fn parses_constants_and_variables() {
        let rule = parse_rule(r#"R route(@n3, "10.0.0.0/8", X, 5) :- adv(@n3, X), X != origin"#).expect("parse");
        assert_eq!(rule.head.location, Term::Const(Value::Node(NodeId(3))));
        assert_eq!(rule.head.args[0], Term::val("10.0.0.0/8"));
        assert_eq!(rule.head.args[2], Term::val(5i64));
        assert!(matches!(rule.constraints[0], Constraint::Compare { op: CmpOp::Ne, .. }));
    }

    #[test]
    fn rejects_malformed_rules() {
        assert!(parse_rule("no arrow here").is_err());
        assert!(parse_rule("R1 head(@X) :- body").is_err());
        assert!(parse_rule("R1 head() :- body(@X)").is_err());
        assert!(parse_rule("head(@X) :- body(@X)").is_err(), "missing rule id");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let rules = parse_program("# only a comment\n\n").expect("parse");
        assert!(rules.is_empty());
    }

    #[test]
    fn expression_parsing_handles_subtraction() {
        let rule = parse_rule("R x(@A, K2) :- y(@A, K), K2 := K - 1").expect("parse");
        match &rule.constraints[0] {
            Constraint::Assign { expr, .. } => assert!(matches!(expr, Expr::Sub(_, _))),
            other => panic!("unexpected constraint {other:?}"),
        }
    }

    #[test]
    fn quoted_strings_may_contain_comment_and_statement_characters() {
        // '#' and '.' inside a quoted constant are content, not syntax —
        // the historical cleaner chopped the line at '#' and split on '.'.
        let rules = parse_program("R1 tag(@X, \"a.b#c\") :- in(@X, Y).").expect("parse");
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].head.args[0], Term::val("a.b#c"));
    }

    #[test]
    fn comparison_before_comma_splits_correctly() {
        // A bare '<' used to be counted as an open bracket, swallowing the
        // next comma and corrupting the body split.
        let rule = parse_rule("R1 out(@X, Y) :- in(@X, Y), Y < 5, seen(@X, Y)").expect("parse");
        assert_eq!(rule.body.len(), 2);
        assert_eq!(rule.constraints.len(), 1);
        assert!(matches!(rule.constraints[0], Constraint::Compare { op: CmpOp::Lt, .. }));
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let err = parse_program("# header\nR1 ok(@X) :- in(@X).\n   broken statement.").expect_err("must fail");
        assert!(err.contains("line 3, column 4"), "{err}");
    }

    #[test]
    fn spans_point_at_statement_starts() {
        let spanned = parse_program_spanned("# comment\nR1 out(@X, Y) :- in(@X, Y).\n  R2 out2(@X) :- in(@X, Y).")
            .expect("parse");
        let spans: Vec<(usize, usize)> = spanned.iter().map(|(_, s)| (s.line, s.col)).collect();
        assert_eq!(spans, vec![(2, 1), (3, 3)]);
    }

    #[test]
    fn unterminated_string_is_a_parse_error() {
        let err = parse_program("R1 out(@X, \"oops) :- in(@X, Y).").expect_err("must fail");
        assert!(err.contains("unterminated string"), "{err}");
    }
}

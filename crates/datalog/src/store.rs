//! The multi-index, copy-on-write tuple store behind [`crate::engine::Engine`].
//!
//! The scan-based engine paid O(store) per body atom per trigger: every rule
//! firing walked the entire `BTreeMap<Tuple, Support>`.  This module replaces
//! that flat map with a [`TupleStore`] that keeps, behind one `Arc`-swapped
//! [`StoreSnapshot`]:
//!
//! * an **arena** interning each distinct tuple once (`TupleId = u32`), so
//!   index entries are dense integers instead of cloned tuples;
//! * a string **interner** mapping relation names and `Value::Str` constants
//!   to `u32` symbols, so index keys compare as integer ops;
//! * a **per-relation index** over all present tuples (serves `tuples_of`,
//!   `current_tuples` and snapshot encoding);
//! * a **per-relation index over locally homed tuples** (the NDlog
//!   localization rule: only tuples homed at the evaluation site are
//!   joinable);
//! * a **per-(relation, column, value) index** over locally homed tuples,
//!   which is what turns a join probe into an O(k) candidate lookup.
//!
//! Readers ([`TupleStore::reader`]) clone the `Arc` — one atomic increment,
//! no lock — and see an immutable snapshot for as long as they hold it.
//! The single writer mutates through `Arc::make_mut`: in place when no reader
//! holds the snapshot (the common case on the maintenance path), and via one
//! copy-on-write clone when a reader does.  This is the RuleTable shape that
//! composes with the parallel audit workers: each worker replays on its own
//! engine, and any handle it takes on the store stays valid while the engine
//! advances.
//!
//! ## Determinism
//!
//! Index buckets are `BTreeSet<TupleId>`, iterated in id (= first-interned)
//! order, and every index probe is a *prefilter*: `Atom::matches` still runs
//! per candidate, and the engine's derivation sets are sorted before use.
//! Candidate **sets** — never enumeration order — determine engine outputs,
//! so the store only has to guarantee it returns a superset-free candidate
//! set, not any particular order.  `Value::List` keys hash to a 64-bit
//! digest: a collision only adds a candidate that `matches` rejects.

use crate::tuple::Tuple;
use crate::value::Value;
use snp_crypto::keys::NodeId;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// An interned symbol (relation name or string constant).
pub type Sym = u32;

/// Dense id of a tuple in the store's arena.
pub type TupleId = u32;

/// FNV-1a over a byte string; used to key composite (`Value::List`) index
/// entries.  Collisions are harmless: a probe bucket is a candidate
/// *prefilter*, and `Atom::matches` rejects false positives.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Interns strings to dense [`Sym`]s so index keys are integer comparisons.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    ids: HashMap<String, Sym>,
    next: Sym,
}

impl Interner {
    /// Intern `s`, allocating a fresh symbol on first sight.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.ids.get(s) {
            return sym;
        }
        let sym = self.next;
        self.next = self.next.checked_add(1).expect("interner overflow");
        self.ids.insert(s.to_string(), sym);
        sym
    }

    /// Look up a symbol without interning.  `None` means the string was never
    /// stored — and therefore no stored tuple can contain it.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.ids.get(s).copied()
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// An exact-equality index key for one column value.
///
/// The join path (`Term::unify` with a bound variable or constant) requires
/// *strict equality* with the stored value, so every value maps to a key and
/// a probe either hits the exact bucket or proves there is no candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) enum ValueKey {
    /// An integer, by value.
    Int(i64),
    /// A node id, by value.
    Node(u64),
    /// An interned string constant.
    Str(Sym),
    /// A composite value (list), by 64-bit digest of its stable encoding.
    Composite(u64),
    /// The literal wildcard value (never stored by well-formed inputs, but
    /// the store indexes whatever the log feeds it).
    Wild,
}

impl ValueKey {
    /// Key for a value being *inserted* (interns new string constants).
    fn of(value: &Value, interner: &mut Interner) -> ValueKey {
        match value {
            Value::Int(i) => ValueKey::Int(*i),
            Value::Node(n) => ValueKey::Node(n.0),
            Value::Str(s) => ValueKey::Str(interner.intern(s)),
            Value::List(_) => {
                let mut bytes = Vec::new();
                value.encode(&mut bytes);
                ValueKey::Composite(fnv1a(&bytes))
            }
            Value::Wild => ValueKey::Wild,
        }
    }

    /// Key for a value being *probed*.  `None` means the value (a string
    /// constant never interned) cannot occur in any stored tuple.
    fn probe(value: &Value, interner: &Interner) -> Option<ValueKey> {
        match value {
            Value::Int(i) => Some(ValueKey::Int(*i)),
            Value::Node(n) => Some(ValueKey::Node(n.0)),
            Value::Str(s) => interner.lookup(s).map(ValueKey::Str),
            Value::List(_) => {
                let mut bytes = Vec::new();
                value.encode(&mut bytes);
                Some(ValueKey::Composite(fnv1a(&bytes)))
            }
            Value::Wild => Some(ValueKey::Wild),
        }
    }
}

/// Why a tuple is present on the node (reference counts per support kind).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct Support {
    /// Base insertions (`ins(β)`).
    pub(crate) base_count: u32,
    /// Local rule derivations.
    pub(crate) derivation_count: u32,
    /// Believed copies per sender (`+τ` notifications).
    pub(crate) believed: BTreeMap<NodeId, u32>,
}

impl Support {
    /// Total support; the tuple is present iff this is positive.
    pub(crate) fn total(&self) -> u32 {
        self.base_count + self.derivation_count + self.believed.values().sum::<u32>()
    }
}

/// One immutable, fully self-contained view of the store: arena, interner,
/// support table and all indexes.  Obtained lock-free via
/// [`TupleStore::reader`]; see the module docs for the copy-on-write
/// contract.
#[derive(Clone, Default)]
pub struct StoreSnapshot {
    node: u64,
    interner: Interner,
    /// Arena: every distinct tuple ever stored, by [`TupleId`].
    arena: Vec<Arc<Tuple>>,
    ids: HashMap<Arc<Tuple>, TupleId>,
    /// Support per tuple.  May transiently contain zero-total entries (a
    /// restored snapshot encodes whatever the node committed); only
    /// positive-support entries are indexed.
    support: HashMap<TupleId, Support>,
    /// All present tuples per relation (any home location).
    by_relation: HashMap<Sym, BTreeSet<TupleId>>,
    /// Present tuples homed at this node, per relation (the joinable set).
    local_by_relation: HashMap<Sym, BTreeSet<TupleId>>,
    /// Present locally-homed tuples per (relation, column, value key).
    local_by_column: HashMap<(Sym, usize, ValueKey), BTreeSet<TupleId>>,
}

// Manual impl: dumping the arena and every bucket swamps test output; the
// shape counters are the useful part.
impl std::fmt::Debug for StoreSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreSnapshot")
            .field("tuples", &self.support.len())
            .field("arena", &self.arena.len())
            .field("relations", &self.by_relation.len())
            .field("column_buckets", &self.local_by_column.len())
            .finish()
    }
}

impl StoreSnapshot {
    /// Resolve a tuple id to its tuple.
    fn tuple(&self, id: TupleId) -> &Arc<Tuple> {
        &self.arena[id as usize]
    }

    fn intern_tuple(&mut self, tuple: &Tuple) -> TupleId {
        if let Some(&id) = self.ids.get(tuple) {
            return id;
        }
        let id = TupleId::try_from(self.arena.len()).expect("tuple arena overflow");
        let arc = Arc::new(tuple.clone());
        self.arena.push(Arc::clone(&arc));
        self.ids.insert(arc, id);
        id
    }

    /// Add a (newly present) tuple to every index it belongs in.
    fn link(&mut self, id: TupleId) {
        let tuple = Arc::clone(self.tuple(id));
        let rel = self.interner.intern(&tuple.relation);
        self.by_relation.entry(rel).or_default().insert(id);
        if tuple.location.0 != self.node {
            return;
        }
        self.local_by_relation.entry(rel).or_default().insert(id);
        for (col, value) in tuple.args.iter().enumerate() {
            let key = ValueKey::of(value, &mut self.interner);
            self.local_by_column.entry((rel, col, key)).or_default().insert(id);
        }
    }

    /// Remove a (no longer present) tuple from every index.  Tolerates ids
    /// that were never linked (zero-support restore artifacts).
    fn unlink(&mut self, id: TupleId) {
        let tuple = Arc::clone(self.tuple(id));
        let Some(rel) = self.interner.lookup(&tuple.relation) else {
            return;
        };
        if let Some(set) = self.by_relation.get_mut(&rel) {
            set.remove(&id);
            if set.is_empty() {
                self.by_relation.remove(&rel);
            }
        }
        if tuple.location.0 != self.node {
            return;
        }
        if let Some(set) = self.local_by_relation.get_mut(&rel) {
            set.remove(&id);
            if set.is_empty() {
                self.local_by_relation.remove(&rel);
            }
        }
        for (col, value) in tuple.args.iter().enumerate() {
            let Some(key) = ValueKey::probe(value, &self.interner) else {
                continue;
            };
            if let Some(set) = self.local_by_column.get_mut(&(rel, col, key)) {
                set.remove(&id);
                if set.is_empty() {
                    self.local_by_column.remove(&(rel, col, key));
                }
            }
        }
    }

    /// Whether `tuple` is present (positive support).
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.ids
            .get(tuple)
            .and_then(|id| self.support.get(id))
            .map(|s| s.total() > 0)
            .unwrap_or(false)
    }

    /// Number of support entries (present tuples, plus any zero-support
    /// entries carried by a restored snapshot).
    pub fn len(&self) -> usize {
        self.support.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.support.is_empty()
    }

    /// Candidate tuples for a local join probe: present tuples of `relation`
    /// homed at this node, optionally restricted to those whose column
    /// `col` equals `value` exactly.  O(k) in the candidate count — this is
    /// the lookup that replaces the full-store scan.
    pub fn local_candidates<'a>(
        &'a self,
        relation: &str,
        bound: Option<(usize, &Value)>,
    ) -> impl Iterator<Item = &'a Tuple> + 'a {
        let ids: Option<&BTreeSet<TupleId>> = match (self.interner.lookup(relation), bound) {
            (None, _) => None,
            (Some(rel), Some((col, value))) => {
                ValueKey::probe(value, &self.interner).and_then(|key| self.local_by_column.get(&(rel, col, key)))
            }
            (Some(rel), None) => self.local_by_relation.get(&rel),
        };
        ids.into_iter().flatten().map(move |id| self.tuple(*id).as_ref())
    }

    /// Visit every present tuple of `relation` (any home location) in
    /// ascending [`Tuple`] order — the order the flat `BTreeMap` used to
    /// iterate in, so callers observe byte-identical sequences.
    pub fn for_each_of(&self, relation: &str, mut f: impl FnMut(&Tuple)) {
        let Some(ids) = self
            .interner
            .lookup(relation)
            .and_then(|rel| self.by_relation.get(&rel))
        else {
            return;
        };
        let mut members: Vec<&Arc<Tuple>> = ids.iter().map(|id| self.tuple(*id)).collect();
        members.sort_unstable();
        for tuple in members {
            f(tuple);
        }
    }

    /// All present tuples of `relation`, sorted (cloned; prefer
    /// [`StoreSnapshot::for_each_of`] when a reference suffices).
    pub fn tuples_of(&self, relation: &str) -> Vec<Tuple> {
        let mut out = Vec::new();
        self.for_each_of(relation, |t| out.push(t.clone()));
        out
    }

    /// All present tuples, sorted in ascending [`Tuple`] order.
    pub fn current_tuples(&self) -> Vec<Tuple> {
        let mut out: Vec<&Arc<Tuple>> = self
            .support
            .iter()
            .filter(|(_, s)| s.total() > 0)
            .map(|(id, _)| self.tuple(*id))
            .collect();
        out.sort_unstable();
        out.into_iter().map(|t| (**t).clone()).collect()
    }

    /// Every support entry (including zero-total restore artifacts), sorted
    /// by tuple — exactly the iteration order of the scan engine's
    /// `BTreeMap`, so snapshot bytes stay identical.
    pub(crate) fn entries_sorted(&self) -> Vec<(&Tuple, &Support)> {
        let mut out: Vec<(&Tuple, &Support)> = self
            .support
            .iter()
            .map(|(id, s)| (self.tuple(*id).as_ref(), s))
            .collect();
        out.sort_unstable_by(|a, b| a.0.cmp(b.0));
        out
    }
}

/// The copy-on-write, multi-index tuple store: single writer, lock-free
/// readers.  See the module docs for the design.
#[derive(Clone, Debug)]
pub struct TupleStore {
    snap: Arc<StoreSnapshot>,
}

impl TupleStore {
    /// An empty store for a node (local indexes cover tuples homed there).
    pub fn new(node: NodeId) -> TupleStore {
        TupleStore {
            snap: Arc::new(StoreSnapshot {
                node: node.0,
                ..StoreSnapshot::default()
            }),
        }
    }

    /// Borrow the current snapshot (no refcount traffic; for `&self` use).
    pub fn view(&self) -> &StoreSnapshot {
        &self.snap
    }

    /// Take a lock-free reader handle: one atomic increment, and the
    /// returned snapshot stays immutable while the writer advances
    /// (copy-on-write).
    pub fn reader(&self) -> Arc<StoreSnapshot> {
        Arc::clone(&self.snap)
    }

    fn write(&mut self) -> &mut StoreSnapshot {
        Arc::make_mut(&mut self.snap)
    }

    /// Apply `f` to the tuple's support entry (creating it empty first).
    /// Returns whether the tuple *appeared* (support went 0 → positive), in
    /// which case it was linked into the indexes.
    pub(crate) fn add_support(&mut self, tuple: &Tuple, f: impl FnOnce(&mut Support)) -> bool {
        let snap = self.write();
        let id = snap.intern_tuple(tuple);
        let entry = snap.support.entry(id).or_default();
        let was_absent = entry.total() == 0;
        f(entry);
        let appeared = was_absent && entry.total() > 0;
        if appeared {
            snap.link(id);
        }
        appeared
    }

    /// Apply `f` to the tuple's support entry if one exists.  Returns
    /// whether the tuple *disappeared* (support went positive → 0), in which
    /// case the entry is dropped and unlinked from the indexes.
    pub(crate) fn remove_support(&mut self, tuple: &Tuple, f: impl FnOnce(&mut Support)) -> bool {
        let snap = self.write();
        let Some(&id) = snap.ids.get(tuple) else {
            return false;
        };
        let Some(entry) = snap.support.get_mut(&id) else {
            return false;
        };
        let was_present = entry.total() > 0;
        f(entry);
        let now_absent = entry.total() == 0;
        if now_absent {
            snap.support.remove(&id);
            snap.unlink(id);
        }
        was_present && now_absent
    }

    /// Install a decoded `(tuple, support)` entry verbatim (snapshot
    /// restore), rebuilding the indexes the snapshot does not carry.
    pub(crate) fn insert_restored(&mut self, tuple: Tuple, support: Support) {
        let snap = self.write();
        let id = snap.intern_tuple(&tuple);
        let present = support.total() > 0;
        let was_present = snap.support.insert(id, support).map(|s| s.total() > 0).unwrap_or(false);
        match (was_present, present) {
            (false, true) => snap.link(id),
            (true, false) => snap.unlink(id),
            _ => {}
        }
    }
}

/// Per-rule evaluation counters (fires, index probes, candidates enumerated).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleEval {
    /// Complete rule firings (instantiations that passed all constraints).
    pub fires: u64,
    /// Index probes issued while joining the rule's body.
    pub probes: u64,
    /// Candidate tuples enumerated across those probes (what a scan engine
    /// would have inspected store-wide per probe).
    pub candidates: u64,
}

impl RuleEval {
    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: &RuleEval) {
        self.fires += other.fires;
        self.probes += other.probes;
        self.candidates += other.candidates;
    }
}

/// Evaluation metrics accumulated by an engine, keyed by rule id.
///
/// Deterministic: counts depend only on the candidate sets the rules joined
/// over, never on enumeration order, so serial and parallel replays of the
/// same history report identical metrics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalMetrics {
    /// Counters per rule id.
    pub rules: BTreeMap<String, RuleEval>,
}

impl EvalMetrics {
    /// The (created-on-demand) counters for a rule.
    pub fn rule(&mut self, id: &str) -> &mut RuleEval {
        if !self.rules.contains_key(id) {
            self.rules.insert(id.to_string(), RuleEval::default());
        }
        self.rules.get_mut(id).expect("just inserted")
    }

    /// Fold another metrics set into this one.
    pub fn merge(&mut self, other: &EvalMetrics) {
        for (id, eval) in &other.rules {
            self.rule(id).merge(eval);
        }
    }

    /// Total rule firings across all rules.
    pub fn total_fires(&self) -> u64 {
        self.rules.values().map(|r| r.fires).sum()
    }

    /// Total index probes across all rules.
    pub fn total_probes(&self) -> u64 {
        self.rules.values().map(|r| r.probes).sum()
    }

    /// Total candidates enumerated across all rules.
    pub fn total_candidates(&self) -> u64 {
        self.rules.values().map(|r| r.candidates).sum()
    }

    /// Whether no counter was ever incremented.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rel: &str, node: u64, args: Vec<Value>) -> Tuple {
        Tuple::new(rel, NodeId(node), args)
    }

    #[test]
    fn add_remove_roundtrip_maintains_indexes() {
        let mut store = TupleStore::new(NodeId(1));
        let a = t("edge", 1, vec![Value::Int(1), Value::Int(2)]);
        let b = t("edge", 1, vec![Value::Int(1), Value::Int(3)]);
        let remote = t("edge", 2, vec![Value::Int(1), Value::Int(4)]);
        assert!(store.add_support(&a, |s| s.base_count += 1));
        assert!(store.add_support(&b, |s| s.base_count += 1));
        assert!(store.add_support(&remote, |s| s.base_count += 1));
        // Second support does not re-appear.
        assert!(!store.add_support(&a, |s| s.base_count += 1));

        let view = store.view();
        assert!(view.contains(&a) && view.contains(&remote));
        // Column probe: both local edges share column 0 = 1.
        let probed: Vec<&Tuple> = view.local_candidates("edge", Some((0, &Value::Int(1)))).collect();
        assert_eq!(probed.len(), 2, "remote tuple must not be a local candidate");
        let probed: Vec<&Tuple> = view.local_candidates("edge", Some((1, &Value::Int(3)))).collect();
        assert_eq!(probed, vec![&b]);
        // Relation index covers all locations.
        assert_eq!(view.tuples_of("edge").len(), 3);

        // First removal only decrements; second removal unlinks.
        assert!(!store.remove_support(&a, |s| s.base_count -= 1));
        assert!(store.remove_support(&a, |s| s.base_count -= 1));
        let view = store.view();
        assert!(!view.contains(&a));
        let probed: Vec<&Tuple> = view.local_candidates("edge", Some((0, &Value::Int(1)))).collect();
        assert_eq!(probed, vec![&b]);
    }

    #[test]
    fn readers_are_isolated_from_later_writes() {
        let mut store = TupleStore::new(NodeId(1));
        let a = t("edge", 1, vec![Value::Int(1)]);
        let b = t("edge", 1, vec![Value::Int(2)]);
        store.add_support(&a, |s| s.base_count += 1);
        let reader = store.reader();
        store.add_support(&b, |s| s.base_count += 1);
        store.remove_support(&a, |s| s.base_count -= 1);
        // The reader still sees the old state (copy-on-write)…
        assert!(reader.contains(&a));
        assert!(!reader.contains(&b));
        // …while the writer sees the new one.
        assert!(!store.view().contains(&a));
        assert!(store.view().contains(&b));
    }

    #[test]
    fn probing_a_never_interned_string_is_empty_not_wrong() {
        let mut store = TupleStore::new(NodeId(1));
        store.add_support(&t("r", 1, vec![Value::str("x")]), |s| s.base_count += 1);
        let view = store.view();
        assert_eq!(view.local_candidates("r", Some((0, &Value::str("y")))).count(), 0);
        assert_eq!(view.local_candidates("r", Some((0, &Value::str("x")))).count(), 1);
        assert_eq!(view.local_candidates("missing", None).count(), 0);
    }

    #[test]
    fn list_values_index_by_digest_and_wild_is_its_own_key() {
        let mut store = TupleStore::new(NodeId(1));
        let l1 = Value::List(vec![Value::Int(1), Value::str("a")]);
        let l2 = Value::List(vec![Value::Int(2)]);
        store.add_support(&t("r", 1, vec![l1.clone()]), |s| s.base_count += 1);
        store.add_support(&t("r", 1, vec![l2.clone()]), |s| s.base_count += 1);
        store.add_support(&t("r", 1, vec![Value::Wild]), |s| s.base_count += 1);
        let view = store.view();
        assert_eq!(view.local_candidates("r", Some((0, &l1))).count(), 1);
        assert_eq!(view.local_candidates("r", Some((0, &Value::Wild))).count(), 1);
        assert_eq!(view.local_candidates("r", None).count(), 3);
    }

    #[test]
    fn sorted_views_match_btreemap_order() {
        let mut store = TupleStore::new(NodeId(1));
        let mut expected = Vec::new();
        // Insert in deliberately unsorted order.
        for i in [5i64, 1, 9, 3, 7] {
            let tup = t("edge", 1, vec![Value::Int(i)]);
            store.add_support(&tup, |s| s.base_count += 1);
            expected.push(tup);
        }
        expected.sort();
        assert_eq!(store.view().current_tuples(), expected);
        assert_eq!(store.view().tuples_of("edge"), expected);
        let sorted: Vec<&Tuple> = store.view().entries_sorted().into_iter().map(|(t, _)| t).collect();
        assert_eq!(sorted, expected.iter().collect::<Vec<_>>());
    }

    #[test]
    fn metrics_merge_and_totals() {
        let mut a = EvalMetrics::default();
        a.rule("R1").fires = 2;
        a.rule("R1").probes = 5;
        let mut b = EvalMetrics::default();
        b.rule("R1").fires = 1;
        b.rule("R2").candidates = 7;
        a.merge(&b);
        assert_eq!(a.rules["R1"].fires, 3);
        assert_eq!(a.total_fires(), 3);
        assert_eq!(a.total_probes(), 5);
        assert_eq!(a.total_candidates(), 7);
    }
}

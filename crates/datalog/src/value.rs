//! The value domain of tuple fields.

use snp_crypto::keys::NodeId;
use std::fmt;

/// A single field of a tuple.
///
/// The domain is deliberately small: integers, strings, node identifiers and
/// opaque digests cover every application in the paper (routing costs,
/// prefixes/AS paths, Chord identifiers, MapReduce keys and values, file
/// hashes).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A signed integer (costs, counts, Chord ids, offsets…).
    Int(i64),
    /// A string (prefixes, words, task names…).
    Str(String),
    /// A node identifier.
    Node(NodeId),
    /// A list of values (e.g. a BGP AS path).
    List(Vec<Value>),
    /// A wildcard, used only in query *patterns* (negative provenance asks
    /// "why is there no `route(@i, P, …)` at all?" — the AS path and next
    /// hop of the missing route are unknown by construction).  A wildcard
    /// matches any concrete value; it never appears in stored tuples.
    Wild,
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Build a node value.
    pub fn node(n: impl Into<NodeId>) -> Value {
        Value::Node(n.into())
    }

    /// Integer content, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String content, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Node content, if this is a [`Value::Node`].
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            Value::Node(n) => Some(*n),
            _ => None,
        }
    }

    /// List content, if this is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Whether this value is the query wildcard.
    pub fn is_wild(&self) -> bool {
        matches!(self, Value::Wild)
    }

    /// Whether this (pattern) value matches a concrete value: wildcards match
    /// anything, lists match element-wise, everything else by equality.
    pub fn matches(&self, concrete: &Value) -> bool {
        match (self, concrete) {
            (Value::Wild, _) => true,
            (Value::List(p), Value::List(c)) => p.len() == c.len() && p.iter().zip(c).all(|(a, b)| a.matches(b)),
            (a, b) => a == b,
        }
    }

    /// Stable byte encoding used for hashing tuples into digests.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(i) => {
                out.push(0x01);
                out.extend_from_slice(&i.to_be_bytes());
            }
            Value::Str(s) => {
                out.push(0x02);
                out.extend_from_slice(&(s.len() as u64).to_be_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Node(n) => {
                out.push(0x03);
                out.extend_from_slice(&n.to_bytes());
            }
            Value::List(items) => {
                out.push(0x04);
                out.extend_from_slice(&(items.len() as u64).to_be_bytes());
                for item in items {
                    item.encode(out);
                }
            }
            Value::Wild => out.push(0x05),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Node(n) => write!(f, "{n}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, "]")
            }
            Value::Wild => write!(f, "*"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            other => write!(f, "{other:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(value: i64) -> Self {
        Value::Int(value)
    }
}

impl From<&str> for Value {
    fn from(value: &str) -> Self {
        Value::Str(value.to_string())
    }
}

impl From<String> for Value {
    fn from(value: String) -> Self {
        Value::Str(value)
    }
}

impl From<NodeId> for Value {
    fn from(value: NodeId) -> Self {
        Value::Node(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::node(3u64).as_node(), Some(NodeId(3)));
        assert_eq!(Value::Int(5).as_str(), None);
        let list = Value::List(vec![Value::Int(1)]);
        assert_eq!(list.as_list().unwrap().len(), 1);
    }

    #[test]
    fn wildcards_match_anything() {
        assert!(Value::Wild.matches(&Value::Int(5)));
        assert!(Value::Wild.matches(&Value::str("x")));
        assert!(Value::Wild.matches(&Value::List(vec![Value::Int(1)])));
        assert!(Value::Int(5).matches(&Value::Int(5)));
        assert!(!Value::Int(5).matches(&Value::Int(6)));
        // Lists match element-wise, so wildcards work inside paths.
        let pattern = Value::List(vec![Value::node(1u64), Value::Wild]);
        assert!(pattern.matches(&Value::List(vec![Value::node(1u64), Value::node(2u64)])));
        assert!(!pattern.matches(&Value::List(vec![Value::node(3u64), Value::node(2u64)])));
        assert!(!pattern.matches(&Value::List(vec![Value::node(1u64)])));
        assert!(Value::Wild.is_wild());
        assert!(!Value::Int(1).is_wild());
    }

    #[test]
    fn encoding_distinguishes_types_and_boundaries() {
        let mut a = Vec::new();
        Value::str("ab").encode(&mut a);
        let mut b = Vec::new();
        Value::str("a").encode(&mut b);
        Value::str("b").encode(&mut b);
        assert_ne!(a, b);

        let mut int_enc = Vec::new();
        Value::Int(3).encode(&mut int_enc);
        let mut node_enc = Vec::new();
        Value::node(3u64).encode(&mut node_enc);
        assert_ne!(int_enc, node_enc);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Value::str("hello")), "hello");
        assert_eq!(format!("{:?}", Value::str("hello")), "\"hello\"");
        assert_eq!(format!("{}", Value::Int(7)), "7");
        assert_eq!(
            format!("{:?}", Value::List(vec![Value::Int(1), Value::Int(2)])),
            "[1,2]"
        );
    }

    #[test]
    fn conversions() {
        let v: Value = 42i64.into();
        assert_eq!(v, Value::Int(42));
        let v: Value = "s".into();
        assert_eq!(v, Value::str("s"));
        let v: Value = NodeId(9).into();
        assert_eq!(v, Value::Node(NodeId(9)));
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut values = vec![Value::str("b"), Value::Int(2), Value::Int(1), Value::str("a")];
        values.sort();
        assert_eq!(
            values,
            vec![Value::Int(1), Value::Int(2), Value::str("a"), Value::str("b")]
        );
    }
}

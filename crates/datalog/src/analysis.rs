//! Static analysis of NDlog rule programs (the `snp-rulecheck` core).
//!
//! Every SNooPy node's behaviour — and therefore the soundness of every
//! provenance graph, absence trace and audit verdict — is defined by its
//! rule program, yet a malformed program historically failed only at
//! runtime or, worse, silently: an arity typo makes [`Atom::matches`]
//! reject every tuple (the rule just never fires), an unbound head
//! variable makes [`Atom::instantiate`] fall through, and a non-monotone
//! aggregate in a recursive cycle can diverge.  This module is the static
//! half of the checking story (PR 6's `snp-check` model-checks the
//! *dynamic* adversary): a classic Datalog safety / stratification
//! analyzer specialized to the NDlog dialect the engine evaluates.
//!
//! [`analyze`] runs seven passes over a (pre-rewrite) rule program and
//! returns structured [`Diagnostic`]s with stable `RCxxxx` codes:
//!
//! | pass | codes | checks |
//! |------|-------|--------|
//! | structure | `RC0701`–`RC0703` | duplicate rule ids, empty bodies, aggregate body arity |
//! | safety | `RC0101`–`RC0105` | range restriction: head/constraint/location variables bound by a positive body atom or a *prior* assignment |
//! | signature | `RC0201`–`RC0203` | relation arity + per-column [`Value`] type lattice across rules and base facts |
//! | stratification | `RC0301`–`RC0302` | predicate dependency graph: `count` in cycles, unbounded head arithmetic on cycles with no monotone aggregate cutting them |
//! | location | `RC0401`–`RC0403` | NDlog link-restriction: one evaluation site, body-bound head location, node-typed location constants |
//! | invertibility | `RC0501` | absence tracing: body atoms recoverable from head bindings (else `trace_absence` enumerates a cross product) |
//! | index coverage | `RC0601` | joins whose probe atom has no bound argument column fall back to a per-relation scan (advisory; cross-check `EvalMetrics`) |
//!
//! Error-level diagnostics are *enforced*: [`RuleSet::new`] and the
//! engines' `add_rule` refuse the program with a typed [`ProgramError`],
//! and `DeploymentBuilder::build` refuses to deploy an application whose
//! program fails analysis.  Warnings and advice are surfaced by the
//! `snp_rulelint` CLI (crate `snp-rulecheck`).
//!
//! [`Atom::matches`]: crate::rule::Atom::matches
//! [`Atom::instantiate`]: crate::rule::Atom::instantiate
//! [`RuleSet::new`]: crate::engine::RuleSet::new

use crate::rule::{AggKind, Atom, CmpOp, Constraint, Expr, Rule, Term};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How serious a diagnostic is.  Ordered: `Advice < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A performance observation; the program is correct as written.
    Advice,
    /// Likely a mistake or an operational hazard, but evaluation is sound.
    Warning,
    /// The program is rejected by the engines and the deployment builder.
    Error,
}

impl Severity {
    /// Lower-case label used in rendered diagnostics (`error[RC0101] …`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Advice => "advice",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The analysis pass that produced a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pass {
    /// Program shape: duplicate ids, empty bodies, aggregate arity.
    Structure,
    /// Safety / range restriction (every variable bound).
    Safety,
    /// Relation signature consistency (arity + column types).
    Signature,
    /// Stratification & termination of recursive cycles.
    Stratification,
    /// Location well-formedness (link restriction).
    Location,
    /// Absence-query invertibility.
    Invertibility,
    /// Join index coverage (advisory).
    IndexCoverage,
}

impl Pass {
    /// Stable lower-case name, used in rendered diagnostics and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Structure => "structure",
            Pass::Safety => "safety",
            Pass::Signature => "signature",
            Pass::Stratification => "stratification",
            Pass::Location => "location",
            Pass::Invertibility => "invertibility",
            Pass::IndexCoverage => "index-coverage",
        }
    }
}

/// A 1-based source position, attached when the program came from text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// 1-based line of the statement that produced the diagnostic.
    pub line: usize,
    /// 1-based column of the statement that produced the diagnostic.
    pub col: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.col)
    }
}

/// One structured finding: stable code, pass, severity, offending rule and
/// (when the program came from text) a source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`RC0101`, …) — golden tests and CI gates key on this.
    pub code: &'static str,
    /// The pass that produced the finding.
    pub pass: Pass,
    /// Error / warning / advice.
    pub severity: Severity,
    /// Id of the offending rule, if the finding is rule-specific.
    pub rule: Option<String>,
    /// Human-readable description of the defect and its consequence.
    pub message: String,
    /// Source position, when known (attached by `snp-rulecheck`).
    pub span: Option<Span>,
}

impl Diagnostic {
    fn new(code: &'static str, pass: Pass, severity: Severity, rule: Option<&str>, message: String) -> Diagnostic {
        Diagnostic {
            code,
            pass,
            severity,
            rule: rule.map(str::to_owned),
            message,
            span: None,
        }
    }

    /// Render the diagnostic as a single line:
    /// `error[RC0101] safety (rule R2): … (line 3, column 1)`.
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}] {}", self.severity.label(), self.code, self.pass.name());
        if let Some(rule) = &self.rule {
            out.push_str(&format!(" (rule {rule})"));
        }
        out.push_str(": ");
        out.push_str(&self.message);
        if let Some(span) = self.span {
            out.push_str(&format!(" ({span})"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The typed error the engines and the deployment builder return for a
/// program with error-level diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramError {
    /// The error-level diagnostics that caused the rejection (never empty).
    pub diagnostics: Vec<Diagnostic>,
}

impl ProgramError {
    /// Wrap the error-level subset of `diagnostics`; `None` when there is
    /// no error-level finding (warnings and advice never reject).
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> Option<ProgramError> {
        let errors: Vec<Diagnostic> = diagnostics
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        if errors.is_empty() {
            None
        } else {
            Some(ProgramError { diagnostics: errors })
        }
    }

    /// A rejection that did not come from an analysis pass (e.g. an internal
    /// engine invariant); rendered under the synthetic code `RC0001`.
    pub fn internal(detail: impl Into<String>) -> ProgramError {
        ProgramError {
            diagnostics: vec![Diagnostic::new(
                "RC0001",
                Pass::Structure,
                Severity::Error,
                None,
                detail.into(),
            )],
        }
    }
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule program rejected by static analysis:")?;
        for d in &self.diagnostics {
            write!(f, "\n  {}", d.render())?;
        }
        Ok(())
    }
}

impl std::error::Error for ProgramError {}

/// Analyze a rule program (no base facts); see [`analyze_with_facts`].
pub fn analyze(rules: &[Rule]) -> Vec<Diagnostic> {
    analyze_with_facts(rules, &[])
}

/// Run all passes over `rules` (pre-`maybe`-rewrite) plus any known base
/// `facts` (workload tuples contribute arity/type evidence to the
/// signature pass, so a program/workload mismatch is caught at build time).
/// Diagnostics are returned in pass order; severities are *not* filtered —
/// use [`ProgramError::from_diagnostics`] to extract the rejecting subset.
pub fn analyze_with_facts(rules: &[Rule], facts: &[Tuple]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_structure(rules, &mut diags);
    check_safety(rules, &mut diags);
    check_signatures(rules, facts, &mut diags);
    check_stratification(rules, &mut diags);
    check_locations(rules, &mut diags);
    check_invertibility(rules, &mut diags);
    check_index_coverage(rules, &mut diags);
    diags
}

/// `true` when any diagnostic is error-level.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

// ---------------------------------------------------------------- helpers

fn term_var(term: &Term) -> Option<&str> {
    match term {
        Term::Var(name) => Some(name.as_str()),
        Term::Const(_) => None,
    }
}

fn atom_vars(atom: &Atom) -> impl Iterator<Item = &str> {
    term_var(&atom.location)
        .into_iter()
        .chain(atom.args.iter().filter_map(term_var))
}

fn expr_vars<'a>(expr: &'a Expr, out: &mut Vec<&'a str>) {
    match expr {
        Expr::Term(t) => {
            if let Some(v) = term_var(t) {
                out.push(v);
            }
        }
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Min(a, b) => {
            expr_vars(a, out);
            expr_vars(b, out);
        }
    }
}

/// Whether the expression contains `+`/`-` (value-generating arithmetic;
/// `min` is bounded by its operands and never grows).
fn expr_grows(expr: &Expr) -> bool {
    match expr {
        Expr::Term(_) => false,
        Expr::Add(_, _) | Expr::Sub(_, _) => true,
        Expr::Min(a, b) => expr_grows(a) || expr_grows(b),
    }
}

/// The concrete corner of the `Value` type lattice (`Wild` is ⊥/unknown).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Int,
    Str,
    Node,
    List,
}

impl Kind {
    fn of(value: &Value) -> Option<Kind> {
        match value {
            Value::Int(_) => Some(Kind::Int),
            Value::Str(_) => Some(Kind::Str),
            Value::Node(_) => Some(Kind::Node),
            Value::List(_) => Some(Kind::List),
            Value::Wild => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Kind::Int => "Int",
            Kind::Str => "Str",
            Kind::Node => "Node",
            Kind::List => "List",
        }
    }
}

// --------------------------------------------------------- structure pass

fn check_structure(rules: &[Rule], diags: &mut Vec<Diagnostic>) {
    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for (index, rule) in rules.iter().enumerate() {
        if let Some(first) = seen.insert(rule.id.as_str(), index) {
            diags.push(Diagnostic::new(
                "RC0701",
                Pass::Structure,
                Severity::Error,
                Some(&rule.id),
                format!(
                    "rule id `{}` is declared more than once (statements {} and {}); \
                     metrics, provenance vertices and maybe-guards key on the id",
                    rule.id,
                    first + 1,
                    index + 1
                ),
            ));
        }
        if rule.body.is_empty() {
            diags.push(Diagnostic::new(
                "RC0702",
                Pass::Structure,
                Severity::Error,
                Some(&rule.id),
                format!(
                    "rule `{}` has an empty body; unconditional derivation is not supported",
                    rule.id
                ),
            ));
        }
        if rule.aggregate.is_some() && rule.body.len() != 1 {
            diags.push(Diagnostic::new(
                "RC0703",
                Pass::Structure,
                Severity::Error,
                Some(&rule.id),
                format!(
                    "aggregation rule `{}` must have exactly one body atom, found {}",
                    rule.id,
                    rule.body.len()
                ),
            ));
        }
    }
}

// ------------------------------------------------------------ safety pass

fn check_safety(rules: &[Rule], diags: &mut Vec<Diagnostic>) {
    for rule in rules {
        if rule.body.is_empty() {
            continue; // RC0702 already reported; everything would be unbound.
        }
        let mut bound: BTreeSet<&str> = rule.body.iter().flat_map(atom_vars).collect();
        // Constraints run in order: an assignment binds its variable for
        // every *later* constraint and for the head.
        for constraint in &rule.constraints {
            match constraint {
                Constraint::Compare { lhs, rhs, .. } => {
                    let mut vars = Vec::new();
                    expr_vars(lhs, &mut vars);
                    expr_vars(rhs, &mut vars);
                    for var in vars {
                        if !bound.contains(var) {
                            diags.push(Diagnostic::new(
                                "RC0103",
                                Pass::Safety,
                                Severity::Error,
                                Some(&rule.id),
                                format!(
                                    "comparison uses variable `{var}` which no body atom or prior \
                                     assignment binds; the constraint can never hold and the rule never fires"
                                ),
                            ));
                        }
                    }
                }
                Constraint::Assign { var, expr } => {
                    let mut vars = Vec::new();
                    expr_vars(expr, &mut vars);
                    for used in vars {
                        if !bound.contains(used) {
                            diags.push(Diagnostic::new(
                                "RC0104",
                                Pass::Safety,
                                Severity::Error,
                                Some(&rule.id),
                                format!(
                                    "assignment to `{var}` reads variable `{used}` which no body atom \
                                     or prior assignment binds; the expression never evaluates"
                                ),
                            ));
                        }
                    }
                    bound.insert(var.as_str());
                }
            }
        }
        let agg = rule.aggregate.as_ref();
        let head_args = match agg {
            // The last head argument is the aggregate output, produced by
            // the engine; RC0105 below checks the aggregated variable.
            Some(_) => &rule.head.args[..rule.head.args.len().saturating_sub(1)],
            None => &rule.head.args[..],
        };
        for var in head_args.iter().filter_map(term_var) {
            if !bound.contains(var) {
                diags.push(Diagnostic::new(
                    "RC0101",
                    Pass::Safety,
                    Severity::Error,
                    Some(&rule.id),
                    format!(
                        "head variable `{var}` is not bound by any body atom or assignment; \
                         the head can never be instantiated"
                    ),
                ));
            }
        }
        if let Some(var) = term_var(&rule.head.location) {
            if !bound.contains(var) {
                diags.push(Diagnostic::new(
                    "RC0102",
                    Pass::Safety,
                    Severity::Error,
                    Some(&rule.id),
                    format!(
                        "head location `@{var}` is not bound by any body atom or assignment; \
                         the derived tuple has no home node"
                    ),
                ));
            }
        }
        if let Some((_, agg_var)) = agg {
            let in_body = rule
                .body
                .first()
                .is_some_and(|atom| atom_vars(atom).any(|v| v == agg_var));
            if !in_body {
                diags.push(Diagnostic::new(
                    "RC0105",
                    Pass::Safety,
                    Severity::Error,
                    Some(&rule.id),
                    format!(
                        "aggregated variable `{agg_var}` does not appear in the body atom; \
                         there is nothing to aggregate over"
                    ),
                ));
            }
        }
    }
}

// --------------------------------------------------------- signature pass

/// Per-rule variable kind hints: `@locations` are nodes, arithmetic and
/// ordered comparisons force `Int`, equality against a constant copies the
/// constant's kind, the aggregated variable is `Int`.
fn rule_var_kinds<'a>(rule: &'a Rule, diags: &mut Vec<Diagnostic>) -> BTreeMap<&'a str, (Kind, &'static str)> {
    let mut kinds: BTreeMap<&str, (Kind, &'static str)> = BTreeMap::new();
    let hint = |kinds: &mut BTreeMap<&'a str, (Kind, &'static str)>,
                diags: &mut Vec<Diagnostic>,
                var: &'a str,
                kind: Kind,
                why: &'static str| {
        match kinds.get(var) {
            Some((existing, first_why)) if *existing != kind => {
                diags.push(Diagnostic::new(
                    "RC0203",
                    Pass::Signature,
                    Severity::Error,
                    Some(&rule.id),
                    format!(
                        "variable `{var}` is used both as {} ({first_why}) and as {} ({why}); \
                         no tuple can satisfy the rule",
                        existing.name(),
                        kind.name()
                    ),
                ));
            }
            Some(_) => {}
            None => {
                kinds.insert(var, (kind, why));
            }
        }
    };
    for atom in std::iter::once(&rule.head).chain(&rule.body) {
        if let Some(var) = term_var(&atom.location) {
            hint(&mut kinds, diags, var, Kind::Node, "an @location");
        }
    }
    let mut int_vars: Vec<&str> = Vec::new();
    for constraint in &rule.constraints {
        match constraint {
            Constraint::Assign { var, expr } => {
                if expr_is_arith(expr) {
                    expr_vars(expr, &mut int_vars);
                    hint(&mut kinds, diags, var.as_str(), Kind::Int, "assigned from arithmetic");
                }
            }
            Constraint::Compare { lhs, op, rhs } => match op {
                CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                    expr_vars(lhs, &mut int_vars);
                    expr_vars(rhs, &mut int_vars);
                }
                CmpOp::Eq | CmpOp::Ne => {
                    if let (Expr::Term(Term::Var(var)), Expr::Term(Term::Const(value)))
                    | (Expr::Term(Term::Const(value)), Expr::Term(Term::Var(var))) = (lhs, rhs)
                    {
                        if let Some(kind) = Kind::of(value) {
                            hint(&mut kinds, diags, var.as_str(), kind, "compared with a constant");
                        }
                    }
                }
            },
        }
    }
    for var in int_vars {
        hint(
            &mut kinds,
            diags,
            var,
            Kind::Int,
            "used in arithmetic or an ordered comparison",
        );
    }
    if let Some((_, agg_var)) = &rule.aggregate {
        hint(&mut kinds, diags, agg_var.as_str(), Kind::Int, "an aggregated column");
    }
    kinds
}

/// Whether the expression is real arithmetic (not a bare term copy).
fn expr_is_arith(expr: &Expr) -> bool {
    !matches!(expr, Expr::Term(_))
}

struct Signature {
    arity: usize,
    context: String,
    // One slot per column: the first concretely-typed use wins, later
    // conflicting uses are reported against it.
    columns: Vec<Option<(Kind, String)>>,
}

/// Fold one atom/fact occurrence of `relation` into the signature map,
/// reporting arity (`RC0201`) and column-type (`RC0202`) conflicts against
/// the first recorded use.
fn record_signature(
    signatures: &mut BTreeMap<String, Signature>,
    diags: &mut Vec<Diagnostic>,
    rule: Option<&str>,
    relation: &str,
    column_kinds: Vec<Option<Kind>>,
    context: &str,
) {
    use std::collections::btree_map::Entry;
    match signatures.entry(relation.to_owned()) {
        Entry::Vacant(slot) => {
            slot.insert(Signature {
                arity: column_kinds.len(),
                context: context.to_owned(),
                columns: column_kinds
                    .into_iter()
                    .map(|k| k.map(|k| (k, context.to_owned())))
                    .collect(),
            });
        }
        Entry::Occupied(mut slot) => {
            let existing = slot.get_mut();
            if existing.arity != column_kinds.len() {
                diags.push(Diagnostic::new(
                    "RC0201",
                    Pass::Signature,
                    Severity::Error,
                    rule,
                    format!(
                        "relation `{relation}` is used with {} argument(s) ({context}) but {} ({}); \
                         mismatched atoms can never match and the rule is silently dead",
                        column_kinds.len(),
                        existing.arity,
                        existing.context
                    ),
                ));
                return;
            }
            for (column, kind) in column_kinds.into_iter().enumerate() {
                let Some(kind) = kind else { continue };
                match &existing.columns[column] {
                    Some((known, first_context)) if *known != kind => {
                        diags.push(Diagnostic::new(
                            "RC0202",
                            Pass::Signature,
                            Severity::Error,
                            rule,
                            format!(
                                "column {column} of relation `{relation}` is {} ({context}) but {} \
                                 ({first_context}); values of different kinds never unify",
                                kind.name(),
                                known.name()
                            ),
                        ));
                    }
                    Some(_) => {}
                    None => existing.columns[column] = Some((kind, context.to_owned())),
                }
            }
        }
    }
}

fn check_signatures(rules: &[Rule], facts: &[Tuple], diags: &mut Vec<Diagnostic>) {
    let mut signatures: BTreeMap<String, Signature> = BTreeMap::new();
    for fact in facts {
        let column_kinds: Vec<Option<Kind>> = fact.args.iter().map(Kind::of).collect();
        let context = format!("a base fact at @{}", fact.location.0);
        record_signature(&mut signatures, diags, None, &fact.relation, column_kinds, &context);
    }
    for rule in rules {
        let kinds = rule_var_kinds(rule, diags);
        let kind_of_term = |term: &Term| -> Option<Kind> {
            match term {
                Term::Const(value) => Kind::of(value),
                Term::Var(name) => kinds.get(name.as_str()).map(|(k, _)| *k),
            }
        };
        for (is_head, atom) in std::iter::once((true, &rule.head)).chain(rule.body.iter().map(|a| (false, a))) {
            let mut column_kinds: Vec<Option<Kind>> = atom.args.iter().map(kind_of_term).collect();
            if is_head && rule.aggregate.is_some() {
                if let Some(last) = column_kinds.last_mut() {
                    // min/max/count all produce integers.
                    *last = Some(Kind::Int);
                }
            }
            let context = format!("rule {}", rule.id);
            record_signature(
                &mut signatures,
                diags,
                Some(&rule.id),
                &atom.relation,
                column_kinds,
                &context,
            );
        }
    }
}

// ---------------------------------------------------- stratification pass

fn check_stratification(rules: &[Rule], diags: &mut Vec<Diagnostic>) {
    // Predicate dependency graph: body relation → head relation.
    let mut relations: BTreeSet<&str> = BTreeSet::new();
    for rule in rules {
        relations.insert(rule.head.relation.as_str());
        relations.extend(rule.body_relations());
    }
    let index: BTreeMap<&str, usize> = relations.iter().enumerate().map(|(i, r)| (*r, i)).collect();
    let mut successors: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); relations.len()];
    for rule in rules {
        let head = index[rule.head.relation.as_str()];
        for body in rule.body_relations() {
            successors[index[body]].insert(head);
        }
    }
    // reach[i] = relations reachable from i via ≥1 edge (so i ∈ reach[i]
    // exactly when i sits on a cycle).
    let mut reach: Vec<BTreeSet<usize>> = Vec::with_capacity(relations.len());
    for start in 0..relations.len() {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue: Vec<usize> = successors[start].iter().copied().collect();
        while let Some(next) = queue.pop() {
            if seen.insert(next) {
                queue.extend(successors[next].iter().copied());
            }
        }
        reach.push(seen);
    }
    let same_scc = |a: usize, b: usize| -> bool {
        if a == b {
            reach[a].contains(&a)
        } else {
            reach[a].contains(&b) && reach[b].contains(&a)
        }
    };
    // A monotone aggregate "cuts" a cycle when both its head and its body
    // relation sit on that cycle — the MinCost R2/R3 pattern, where
    // `bestCost = min<cost>` keeps one value per group and recursion through
    // `+` converges instead of enumerating ever-growing costs.
    let cycle_cut_by_monotone_agg = |head: usize| -> bool {
        rules.iter().any(|r| {
            matches!(r.aggregate, Some((AggKind::Min, _)) | Some((AggKind::Max, _)))
                && r.body.first().is_some_and(|b| {
                    let rh = index[r.head.relation.as_str()];
                    let rb = index[b.relation.as_str()];
                    same_scc(head, rh) && same_scc(head, rb)
                })
        })
    };
    for rule in rules {
        let head = index[rule.head.relation.as_str()];
        let on_cycle = rule.body_relations().any(|b| reach[head].contains(&index[b]));
        if !on_cycle {
            continue;
        }
        if let Some((AggKind::Count, agg_var)) = &rule.aggregate {
            diags.push(Diagnostic::new(
                "RC0301",
                Pass::Stratification,
                Severity::Error,
                Some(&rule.id),
                format!(
                    "`count<{agg_var}>` aggregates relation `{}` which depends on the rule's own \
                     head `{}`; count is non-monotone and the fixpoint may never settle",
                    rule.body[0].relation, rule.head.relation
                ),
            ));
        }
        // Head arithmetic feeding the cycle: `K := K1 + K2` with the result
        // in the head generates fresh values every round; without a min/max
        // aggregate on the cycle or an ordered comparison bounding the
        // variable, evaluation diverges (the engine's 100k-step fuse blows).
        let head_vars: BTreeSet<&str> = rule.head.args.iter().filter_map(term_var).collect();
        for constraint in &rule.constraints {
            let Constraint::Assign { var, expr } = constraint else {
                continue;
            };
            if !expr_grows(expr) || !head_vars.contains(var.as_str()) {
                continue;
            }
            let bounded = rule.constraints.iter().any(|c| match c {
                Constraint::Compare { lhs, op, rhs } => {
                    matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) && {
                        let mut vars = Vec::new();
                        expr_vars(lhs, &mut vars);
                        expr_vars(rhs, &mut vars);
                        vars.contains(&var.as_str())
                    }
                }
                Constraint::Assign { .. } => false,
            });
            if !bounded && !cycle_cut_by_monotone_agg(head) {
                diags.push(Diagnostic::new(
                    "RC0302",
                    Pass::Stratification,
                    Severity::Error,
                    Some(&rule.id),
                    format!(
                        "`{var} := …` computes an unbounded value with `+`/`-` on a recursive cycle \
                         through `{}`, and no min/max aggregate or comparison bounds it; \
                         evaluation may diverge",
                        rule.head.relation
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------- location pass

fn check_locations(rules: &[Rule], diags: &mut Vec<Diagnostic>) {
    for rule in rules {
        if rule.body.is_empty() {
            continue;
        }
        let site = &rule.body[0].location;
        for atom in &rule.body[1..] {
            if atom.location != *site {
                diags.push(Diagnostic::new(
                    "RC0401",
                    Pass::Location,
                    Severity::Error,
                    Some(&rule.id),
                    format!(
                        "body atom `{}` is at a different location than `{}`; the engine evaluates \
                         localized rules only (rewrite with explicit message relations first)",
                        atom.relation, rule.body[0].relation
                    ),
                ));
            }
        }
        // Link restriction: the head's destination must be a value some body
        // atom carries — a *computed* destination (bound only by `:=`) would
        // let a rule ship tuples to nodes no base tuple ever named.
        if let Some(var) = term_var(&rule.head.location) {
            let atom_bound = rule.body.iter().flat_map(atom_vars).any(|v| v == var);
            let assigned = rule
                .constraints
                .iter()
                .any(|c| matches!(c, Constraint::Assign { var: v, .. } if v == var));
            if !atom_bound && assigned {
                diags.push(Diagnostic::new(
                    "RC0402",
                    Pass::Location,
                    Severity::Error,
                    Some(&rule.id),
                    format!(
                        "head location `@{var}` is only bound by an assignment, not by a body atom; \
                         NDlog link-restriction requires a body-carried destination"
                    ),
                ));
            }
        }
        for (what, atom) in std::iter::once(("head", &rule.head)).chain(rule.body.iter().map(|a| ("body", a))) {
            if let Term::Const(value) = &atom.location {
                if !matches!(value, Value::Node(_)) {
                    diags.push(Diagnostic::new(
                        "RC0403",
                        Pass::Location,
                        Severity::Error,
                        Some(&rule.id),
                        format!(
                            "{what} atom `{}` has the constant location `{value:?}` which is not a \
                             node id; the atom can never match or instantiate",
                            atom.relation
                        ),
                    ));
                }
            }
        }
    }
}

// ----------------------------------------------------- invertibility pass

fn check_invertibility(rules: &[Rule], diags: &mut Vec<Diagnostic>) {
    for rule in rules {
        if rule.body.is_empty() || rule.aggregate.is_some() {
            continue; // aggregates group by head args; the body is recoverable.
        }
        // Absence tracing starts from the head bindings and re-enumerates the
        // body; an atom with no bound term (no constant, no head-recoverable
        // variable, not even its location) forces `trace_absence` to try every
        // combination of stored tuples for it.
        let mut bound: BTreeSet<&str> = atom_vars(&rule.head).collect();
        let mut remaining: Vec<usize> = (0..rule.body.len()).collect();
        while !remaining.is_empty() {
            let anchored = |i: usize| -> usize {
                let atom = &rule.body[i];
                std::iter::once(&atom.location)
                    .chain(&atom.args)
                    .filter(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => bound.contains(v.as_str()),
                    })
                    .count()
            };
            let best = remaining
                .iter()
                .copied()
                .max_by_key(|&i| (anchored(i), std::cmp::Reverse(i)))
                .unwrap_or(0);
            if anchored(best) == 0 {
                let atom = &rule.body[best];
                diags.push(Diagnostic::new(
                    "RC0501",
                    Pass::Invertibility,
                    Severity::Warning,
                    Some(&rule.id),
                    format!(
                        "body atom `{}` shares no variable or constant with the head or earlier \
                         atoms; `trace_absence` must enumerate every stored `{}` combination",
                        atom.relation, atom.relation
                    ),
                ));
            }
            bound.extend(atom_vars(&rule.body[best]));
            remaining.retain(|&i| i != best);
        }
    }
}

// --------------------------------------------------- index-coverage pass

fn check_index_coverage(rules: &[Rule], diags: &mut Vec<Diagnostic>) {
    for rule in rules {
        if rule.body.len() < 2 || rule.aggregate.is_some() {
            continue;
        }
        // Mirror the engine's greedy join order from every possible trigger
        // atom: at each step the most-bound atom is joined next, probing the
        // per-(relation, column, value) index with its first bound argument
        // column.  A step with no bound argument column degenerates to the
        // per-relation scan (only the local-index location pin applies).
        let mut flagged: BTreeSet<usize> = BTreeSet::new();
        for trigger in 0..rule.body.len() {
            let mut bound: BTreeSet<&str> = atom_vars(&rule.body[trigger]).collect();
            let mut remaining: Vec<usize> = (0..rule.body.len()).filter(|&i| i != trigger).collect();
            while !remaining.is_empty() {
                let score = |i: usize| -> usize {
                    let atom = &rule.body[i];
                    std::iter::once(&atom.location)
                        .chain(&atom.args)
                        .filter(|t| match t {
                            Term::Const(_) => true,
                            Term::Var(v) => bound.contains(v.as_str()),
                        })
                        .count()
                };
                let best = remaining
                    .iter()
                    .copied()
                    .max_by_key(|&i| (score(i), std::cmp::Reverse(i)))
                    .unwrap_or(0);
                let has_probe_column = rule.body[best].args.iter().any(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v.as_str()),
                });
                if !has_probe_column {
                    flagged.insert(best);
                }
                bound.extend(atom_vars(&rule.body[best]));
                remaining.retain(|&i| i != best);
            }
        }
        for i in flagged {
            diags.push(Diagnostic::new(
                "RC0601",
                Pass::IndexCoverage,
                Severity::Advice,
                Some(&rule.id),
                format!(
                    "joining `{}` has no bound argument column for at least one trigger order; \
                     the join falls back to a per-relation scan (watch EvalMetrics candidates)",
                    rule.body[i].relation
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn analyze_text(program: &str) -> Vec<Diagnostic> {
        analyze(&parse_program(program).expect("parse"))
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    const MINCOST: &str = "
        R1 cost(@X, Y, K) :- link(@X, Y, K).
        R2 cost(@C, D, K3) :- link(@B, C, K1), bestCost(@B, D, K2), K3 := K1 + K2, C != D.
        R3 bestCost(@X, Y, min<K>) :- cost(@X, Y, K).
    ";

    #[test]
    fn mincost_is_error_free() {
        let diags = analyze_text(MINCOST);
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn unbound_head_variable_is_rc0101() {
        let diags = analyze_text("R1 out(@X, Y, Z) :- in(@X, Y).");
        assert!(codes(&diags).contains(&"RC0101"), "{diags:?}");
    }

    #[test]
    fn unbound_comparison_is_rc0103() {
        let diags = analyze_text("R1 out(@X, Y) :- in(@X, Y), Z < 3.");
        assert!(codes(&diags).contains(&"RC0103"), "{diags:?}");
    }

    #[test]
    fn arity_conflict_is_rc0201() {
        let diags = analyze_text(
            "R1 out(@X, Y) :- in(@X, Y).
             R2 out(@X, Y, Y) :- in(@X, Y).",
        );
        assert!(codes(&diags).contains(&"RC0201"), "{diags:?}");
    }

    #[test]
    fn column_type_conflict_is_rc0202() {
        let diags = analyze_text(
            "R1 out(@X, 3) :- in(@X, Y).
             R2 out(@X, \"three\") :- in(@X, Y).",
        );
        assert!(codes(&diags).contains(&"RC0202"), "{diags:?}");
    }

    #[test]
    fn count_on_a_cycle_is_rc0301() {
        let diags = analyze_text(
            "R1 p(@X, Y) :- q(@X, Y).
             R2 q(@X, count<Y>) :- p(@X, Y).",
        );
        assert!(codes(&diags).contains(&"RC0301"), "{diags:?}");
    }

    #[test]
    fn unbounded_cycle_arithmetic_is_rc0302() {
        let diags = analyze_text("R1 p(@X, K2) :- p(@X, K), K2 := K + 1.");
        assert!(codes(&diags).contains(&"RC0302"), "{diags:?}");
    }

    #[test]
    fn mincost_aggregate_cuts_its_cycle() {
        // Same shape as RC0302 but with min<> on the cycle — allowed.
        let diags = analyze_text(MINCOST);
        assert!(!codes(&diags).contains(&"RC0302"), "{diags:?}");
    }

    #[test]
    fn split_evaluation_site_is_rc0401() {
        let diags = analyze_text("R1 out(@X, Y) :- p(@X, Y), q(@Y, X).");
        assert!(codes(&diags).contains(&"RC0401"), "{diags:?}");
    }

    #[test]
    fn computed_head_location_is_rc0402() {
        let diags = analyze_text("R1 out(@Z, Y) :- p(@X, Y), Z := X.");
        assert!(codes(&diags).contains(&"RC0402"), "{diags:?}");
    }

    #[test]
    fn unanchored_body_atom_is_rc0501() {
        let diags = analyze_text("R1 out(@X, E) :- p(@X, Y), q(@X, A, B), E := A + Y.");
        // q's variables A, B are folded into E; B is unrecoverable but q is
        // still anchored via @X — so no warning here...
        assert!(!codes(&diags).contains(&"RC0501"), "{diags:?}");
        // ...whereas a head that shares nothing with the body (constant home
        // node, constant payload) leaves the body atom unanchored: the tracer
        // must enumerate every stored `sensor` tuple.
        let diags = analyze_text("R1 alarm(@n1, \"fire\") :- sensor(@X, Y).");
        assert!(!has_errors(&diags), "{diags:?}");
        assert!(codes(&diags).contains(&"RC0501"), "{diags:?}");
    }

    #[test]
    fn scan_fallback_join_is_rc0601_advice_only() {
        let diags = analyze_text("R1 out(@X, Y, B) :- p(@X, Y), q(@X, A, B).");
        let advice: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "RC0601").collect();
        assert!(!advice.is_empty(), "{diags:?}");
        assert!(advice.iter().all(|d| d.severity == Severity::Advice));
        assert!(!has_errors(&diags), "{diags:?}");
    }

    #[test]
    fn duplicate_rule_id_is_rc0701() {
        let diags = analyze_text(
            "R1 out(@X, Y) :- in(@X, Y).
             R1 out(@X, Y) :- other(@X, Y).",
        );
        assert!(codes(&diags).contains(&"RC0701"), "{diags:?}");
    }

    #[test]
    fn program_error_keeps_only_errors() {
        let mut diags = analyze_text("R1 out(@X, Y, Z) :- in(@X, Y).");
        diags.push(Diagnostic::new(
            "RC0601",
            Pass::IndexCoverage,
            Severity::Advice,
            None,
            "advice".into(),
        ));
        let err = ProgramError::from_diagnostics(diags).expect("has errors");
        assert!(err.diagnostics.iter().all(|d| d.severity == Severity::Error));
        assert!(err.to_string().contains("RC0101"), "{err}");
    }

    #[test]
    fn facts_contribute_signature_evidence() {
        use snp_crypto::keys::NodeId;
        let rules = parse_program("R1 out(@X, K2) :- in(@X, K), K2 := K + 1.").expect("parse");
        // The rule wants in.0 : Int, the workload inserts a Str there.
        let fact = Tuple::new("in", NodeId(1), vec![Value::str("oops")]);
        let diags = analyze_with_facts(&rules, &[fact]);
        assert!(codes(&diags).contains(&"RC0202"), "{diags:?}");
    }
}

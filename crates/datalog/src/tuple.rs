//! Tuples: the unit of state in the system model.

use crate::value::Value;
use snp_crypto::keys::NodeId;
use snp_crypto::Digest;
use std::fmt;

/// A tuple `rel(@loc, a1, …, ak)`.
///
/// Following the paper's notation, every tuple is homed at a specific node
/// (`@loc`); the location is stored explicitly rather than as the first
/// argument so that code cannot accidentally treat it as data.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    /// Relation name, e.g. `link`, `route`, `bestCost`.
    pub relation: String,
    /// The node the tuple lives on (`@loc`).
    pub location: NodeId,
    /// The remaining arguments.
    pub args: Vec<Value>,
}

impl Tuple {
    /// Construct a tuple.
    pub fn new(relation: impl Into<String>, location: NodeId, args: Vec<Value>) -> Tuple {
        Tuple {
            relation: relation.into(),
            location,
            args,
        }
    }

    /// Stable byte encoding (used for hashing and for wire-size accounting).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.args.len() * 12);
        out.extend_from_slice(&(self.relation.len() as u64).to_be_bytes());
        out.extend_from_slice(self.relation.as_bytes());
        out.extend_from_slice(&self.location.to_bytes());
        out.extend_from_slice(&(self.args.len() as u64).to_be_bytes());
        for arg in &self.args {
            arg.encode(&mut out);
        }
        out
    }

    /// Content digest of the tuple; used as a compact unique identifier
    /// (the paper's Hadoop instrumentation assigns tuples UIDs "based on
    /// content and execution context", §6.2).
    pub fn digest(&self) -> Digest {
        snp_crypto::hash(&self.encode())
    }

    /// Approximate wire size of the tuple in bytes.
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }

    /// Argument `i` as an integer, if present and of that type.
    pub fn int_arg(&self, i: usize) -> Option<i64> {
        self.args.get(i).and_then(Value::as_int)
    }

    /// Argument `i` as a string, if present and of that type.
    pub fn str_arg(&self, i: usize) -> Option<&str> {
        self.args.get(i).and_then(Value::as_str)
    }

    /// Argument `i` as a node id, if present and of that type.
    pub fn node_arg(&self, i: usize) -> Option<NodeId> {
        self.args.get(i).and_then(Value::as_node)
    }

    /// Whether any argument is a [`Value::Wild`] wildcard, i.e. the tuple is
    /// a query *pattern* rather than concrete state.
    pub fn is_pattern(&self) -> bool {
        fn any_wild(v: &Value) -> bool {
            match v {
                Value::Wild => true,
                Value::List(items) => items.iter().any(any_wild),
                _ => false,
            }
        }
        self.args.iter().any(any_wild)
    }

    /// Whether this tuple, read as a pattern, covers a concrete tuple: same
    /// relation, same location, and every argument matches (wildcards match
    /// anything).  A fully concrete tuple covers exactly itself.
    pub fn covers(&self, concrete: &Tuple) -> bool {
        self.relation == concrete.relation
            && self.location == concrete.location
            && self.args.len() == concrete.args.len()
            && self.args.iter().zip(&concrete.args).all(|(p, c)| p.matches(c))
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(@{}", self.relation, self.location)?;
        for arg in &self.args {
            write!(f, ",{arg:?}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Shorthand constructor: `tuple!("link", at NodeId(1), [2i64, 5i64])` style
/// helper used pervasively in tests and applications.
pub fn tuple(relation: &str, location: NodeId, args: Vec<Value>) -> Tuple {
    Tuple::new(relation, location, args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tuple {
        Tuple::new("link", NodeId(1), vec![Value::node(2u64), Value::Int(5)])
    }

    #[test]
    fn digest_is_content_addressed() {
        let a = sample();
        let b = sample();
        assert_eq!(a.digest(), b.digest());
        let mut c = sample();
        c.args[1] = Value::Int(6);
        assert_ne!(a.digest(), c.digest());
        let mut d = sample();
        d.location = NodeId(9);
        assert_ne!(a.digest(), d.digest());
        let mut e = sample();
        e.relation = "route".into();
        assert_ne!(a.digest(), e.digest());
    }

    #[test]
    fn typed_arg_accessors() {
        let t = sample();
        assert_eq!(t.node_arg(0), Some(NodeId(2)));
        assert_eq!(t.int_arg(1), Some(5));
        assert_eq!(t.str_arg(0), None);
        assert_eq!(t.int_arg(7), None);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", sample()), "link(@n1,n2,5)");
    }

    #[test]
    fn wire_size_grows_with_args() {
        let small = Tuple::new("r", NodeId(0), vec![]);
        let big = Tuple::new("r", NodeId(0), vec![Value::str("x".repeat(100))]);
        assert!(big.wire_size() > small.wire_size() + 100);
    }

    #[test]
    fn patterns_cover_concrete_tuples() {
        let concrete = sample();
        let mut pattern = sample();
        pattern.args[1] = Value::Wild;
        assert!(pattern.is_pattern());
        assert!(!concrete.is_pattern());
        assert!(pattern.covers(&concrete));
        assert!(concrete.covers(&concrete), "a concrete tuple covers itself");
        let mut other = sample();
        other.args[0] = Value::node(9u64);
        assert!(!pattern.covers(&other), "non-wild args still constrain");
        let mut elsewhere = sample();
        elsewhere.location = NodeId(7);
        assert!(!pattern.covers(&elsewhere), "location is never a wildcard");
        let mut short = sample();
        short.args.pop();
        assert!(!pattern.covers(&short));
    }

    #[test]
    fn ordering_is_deterministic() {
        let mut ts = [
            Tuple::new("b", NodeId(0), vec![]),
            Tuple::new("a", NodeId(1), vec![]),
            Tuple::new("a", NodeId(0), vec![Value::Int(2)]),
            Tuple::new("a", NodeId(0), vec![Value::Int(1)]),
        ];
        ts.sort();
        assert_eq!(ts[0].relation, "a");
        assert_eq!(ts[3].relation, "b");
    }
}

//! Negative provenance: tracing why a tuple is *not* derivable.
//!
//! The positive half of the system explains how a tuple came to exist; this
//! module answers the dual question — "why does my table have *no* such
//! tuple?" — by enumerating, over the known constant domain, every rule
//! instantiation that *could* have derived a tuple matching the queried
//! pattern and reporting each one's first missing or failed precondition.
//! This is the standard treatment of auditing a negative in fault detection:
//! a correct node must be able to show that it followed the protocol and
//! still did not derive the tuple.
//!
//! The entry point is [`crate::machine::StateMachine::absence_of`], which
//! rule-driven machines implement via
//! [`trace_absence`]; hand-written application machines (BGP, Chord)
//! implement it with equivalent domain logic.  Either way the result is a
//! list of [`AbsenceWitness`]es the querier turns into `absence` /
//! `missing-precondition` vertices of the provenance graph, recursing across
//! nodes when the missing precondition is a message that was never received.

use crate::engine::RuleSet;
use crate::rule::{Atom, Bindings, Rule, Term};
use crate::store::fnv1a;
use crate::tuple::Tuple;
use crate::value::Value;
use snp_crypto::keys::NodeId;
use std::collections::HashMap;

/// One reason a tuple matching the queried pattern does not exist on a node.
///
/// Witnesses are *claims about the node's visible state*: the querier
/// verifies them against the node's replayed (tamper-evident) history, so a
/// node cannot lie its way into a clean absence explanation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbsenceWitness {
    /// No rule can derive the pattern: it could only exist as a base tuple,
    /// and no matching base tuple was ever inserted (or the insertion was
    /// later deleted — the querier distinguishes the two from the replayed
    /// insertion/deletion intervals).
    NoBaseInsertion,
    /// `rule` evaluates locally and could derive the pattern, but its body
    /// join fails: `missing` is the first body atom with no matching present
    /// tuple, grounded as far as the partial join allows (unjoined variables
    /// become wildcards).
    MissingLocal {
        /// The rule that could have fired.
        rule: String,
        /// The first missing body atom, as a (possibly wildcarded) pattern.
        missing: Tuple,
    },
    /// A tuple matching the pattern could only arrive as a `+τ` notification
    /// derived at another node; no such notification was ever received.
    /// `senders` are the candidate deriving nodes over the known constant
    /// domain — the querier audits each one.
    NeverReceived {
        /// The rule whose remote evaluation would have produced the message.
        rule: String,
        /// The tuple (pattern) that would have been sent.
        tuple: Tuple,
        /// Candidate sending nodes, ascending.
        senders: Vec<NodeId>,
    },
    /// `rule`'s body joined completely, but a constraint (or an aggregation /
    /// export-policy decision) excluded every instantiation matching the
    /// pattern.  This is a *legitimate* reason for absence — e.g. a BGP route
    /// withheld by Gao–Rexford export policy.
    ConstraintFailed {
        /// The rule (or policy) that filtered the derivation.
        rule: String,
    },
    /// The node's verified visible state *does* satisfy `rule`'s body, so a
    /// tuple matching the pattern should exist — its absence is itself
    /// evidence of misbehavior (the querier colors the absence vertex red).
    Derivable {
        /// The rule whose derivation is unaccountably missing.
        rule: String,
    },
}

/// Enumerate, over the constant domain of `present` ∪ `peers`, the rule
/// instantiations that could derive a tuple matching `pattern` at `node`,
/// reporting each one's first missing or failed precondition.
///
/// `present` is the node's visible tuple state at the instant of interest
/// (base + derived + believed, as reconstructed from its verified log);
/// `peers` is the set of known nodes, used as the candidate domain for
/// unresolved evaluation sites.  Witnesses come back in rule-set order, so
/// the output is deterministic.
pub fn trace_absence(
    ruleset: &RuleSet,
    node: NodeId,
    pattern: &Tuple,
    present: &[Tuple],
    peers: &[NodeId],
) -> Vec<AbsenceWitness> {
    let domain = LocalDomain::build(present, node);
    let mut witnesses = Vec::new();
    let mut head_matched = false;
    for rule in ruleset.rules() {
        let mut bindings = Bindings::new();
        if !unify_pattern(&rule.head, pattern, &mut bindings) {
            continue;
        }
        head_matched = true;
        let site = match rule.evaluation_site() {
            Ok(term) => term.clone(),
            Err(_) => continue,
        };
        match site.resolve(&bindings).and_then(|v| v.as_node()) {
            Some(s) if s == node => {
                witnesses.extend(trace_local(rule, node, pattern, &domain, bindings));
            }
            Some(s) => {
                // The body lives on another node: a matching tuple could only
                // have arrived as a notification derived there.  Only the
                // tuple's home node reasons about what it never received —
                // a candidate sender is asked solely about its own
                // derivations, so the recursion cannot bounce back and forth.
                if pattern.location == node {
                    witnesses.push(AbsenceWitness::NeverReceived {
                        rule: rule.id.clone(),
                        tuple: pattern.clone(),
                        senders: vec![s],
                    });
                }
            }
            None => {
                // Unresolved site.  At the tuple's home every peer is a
                // candidate remote deriver; and the rule might also fire
                // locally with the site bound to this node.
                let mut local_bindings = bindings.clone();
                if let Term::Var(name) = &site {
                    local_bindings.insert(name.clone(), Value::Node(node));
                }
                witnesses.extend(trace_local(rule, node, pattern, &domain, local_bindings));
                if pattern.location == node {
                    let senders: Vec<NodeId> = peers.iter().copied().filter(|p| *p != node).collect();
                    if !senders.is_empty() {
                        witnesses.push(AbsenceWitness::NeverReceived {
                            rule: rule.id.clone(),
                            tuple: pattern.clone(),
                            senders,
                        });
                    }
                }
            }
        }
    }
    if !head_matched {
        witnesses.push(AbsenceWitness::NoBaseInsertion);
    }
    witnesses
}

/// Unify a rule-head atom with a queried pattern: wildcard arguments leave
/// the corresponding head term unconstrained; concrete arguments unify
/// normally, extending `bindings`.
fn unify_pattern(head: &crate::rule::Atom, pattern: &Tuple, bindings: &mut Bindings) -> bool {
    if head.relation != pattern.relation || head.args.len() != pattern.args.len() {
        return false;
    }
    if !head.location.unify(&Value::Node(pattern.location), bindings) {
        return false;
    }
    head.args.iter().zip(&pattern.args).all(|(term, value)| match value {
        Value::Wild => true,
        concrete => term.unify(concrete, bindings),
    })
}

/// Digest-bucketed view of the locally homed present tuples, built once per
/// trace so body joins probe per-(relation, column, value) buckets instead of
/// re-scanning the whole constant domain per atom per partial binding.
///
/// Buckets keep `present` insertion order, and a probe only ever skips
/// candidates that `Atom::matches` would have rejected anyway (the bucket key
/// mirrors `Term::unify`'s strict equality), so the sequence of surviving
/// partials — including the `partials.first()` used to ground a missing atom
/// — is identical to the former full scan's.  Keys are 64-bit digests; a
/// collision merely widens a bucket with candidates `matches` then rejects.
struct LocalDomain<'a> {
    by_relation: HashMap<u64, Vec<&'a Tuple>>,
    by_column: HashMap<u64, Vec<&'a Tuple>>,
}

fn relation_key(relation: &str) -> u64 {
    fnv1a(relation.as_bytes())
}

fn column_key(relation: &str, col: usize, value: &Value) -> u64 {
    let mut bytes = Vec::with_capacity(relation.len() + 16);
    bytes.extend_from_slice(relation.as_bytes());
    bytes.push(0xff);
    bytes.extend_from_slice(&(col as u64).to_be_bytes());
    value.encode(&mut bytes);
    fnv1a(&bytes)
}

impl<'a> LocalDomain<'a> {
    /// Index the tuples homed at `node` (rule bodies only see those).
    fn build(present: &'a [Tuple], node: NodeId) -> LocalDomain<'a> {
        let mut by_relation: HashMap<u64, Vec<&'a Tuple>> = HashMap::new();
        let mut by_column: HashMap<u64, Vec<&'a Tuple>> = HashMap::new();
        for tuple in present.iter().filter(|t| t.location == node) {
            by_relation
                .entry(relation_key(&tuple.relation))
                .or_default()
                .push(tuple);
            for (col, value) in tuple.args.iter().enumerate() {
                by_column
                    .entry(column_key(&tuple.relation, col, value))
                    .or_default()
                    .push(tuple);
            }
        }
        LocalDomain { by_relation, by_column }
    }

    /// Candidates for joining `atom` under `bindings`: the bucket of the
    /// first bound argument column, or the whole relation when none is bound.
    fn candidates(&self, atom: &Atom, bindings: &Bindings) -> &[&'a Tuple] {
        let probe = atom
            .args
            .iter()
            .enumerate()
            .find_map(|(col, term)| term.resolve(bindings).map(|v| (col, v)));
        let bucket = match probe {
            Some((col, value)) => self.by_column.get(&column_key(&atom.relation, col, &value)),
            None => self.by_relation.get(&relation_key(&atom.relation)),
        };
        bucket.map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Trace one rule's local body join against the present tuples.
fn trace_local(
    rule: &Rule,
    node: NodeId,
    pattern: &Tuple,
    domain: &LocalDomain<'_>,
    bindings: Bindings,
) -> Vec<AbsenceWitness> {
    let mut partials: Vec<Bindings> = vec![bindings];
    for atom in &rule.body {
        let mut next = Vec::new();
        for bound in &partials {
            for candidate in domain.candidates(atom, bound) {
                let mut extended = bound.clone();
                if atom.matches(candidate, &mut extended) {
                    next.push(extended);
                }
            }
        }
        if next.is_empty() {
            // First missing body atom: ground it under the (deterministic)
            // first surviving partial, wildcarding unjoined variables.
            let witness_bindings = partials.first().cloned().unwrap_or_default();
            let missing = ground_atom(atom, node, &witness_bindings);
            return vec![AbsenceWitness::MissingLocal {
                rule: rule.id.clone(),
                missing,
            }];
        }
        partials = next;
    }
    // Every body atom joined.  Aggregation rules pick a single winner per
    // group, so a complete join does not by itself imply the *queried* head
    // value: report the aggregation as the filter unless the pattern is
    // compatible with whatever the aggregate would produce (wild aggregate
    // argument).
    if rule.aggregate.is_some() {
        let agg_is_wild = pattern.args.last().map(Value::is_wild).unwrap_or(false);
        return vec![if agg_is_wild {
            AbsenceWitness::Derivable { rule: rule.id.clone() }
        } else {
            AbsenceWitness::ConstraintFailed { rule: rule.id.clone() }
        }];
    }
    // Standard rule: check the constraints per complete instantiation.
    let mut any_passed = false;
    for partial in &partials {
        let mut env = partial.clone();
        if rule.constraints.iter().all(|c| c.apply(&mut env)) {
            if let Some(head) = rule.head.instantiate(&env) {
                if pattern.covers(&head) {
                    any_passed = true;
                    break;
                }
            }
        }
    }
    vec![if any_passed {
        AbsenceWitness::Derivable { rule: rule.id.clone() }
    } else {
        AbsenceWitness::ConstraintFailed { rule: rule.id.clone() }
    }]
}

/// Instantiate a body atom as far as `bindings` allow; unbound variables
/// become wildcards.  The atom's location is the evaluation site, which is
/// `node` by construction when this is called.
fn ground_atom(atom: &crate::rule::Atom, node: NodeId, bindings: &Bindings) -> Tuple {
    let args = atom
        .args
        .iter()
        .map(|term| term.resolve(bindings).unwrap_or(Value::Wild))
        .collect();
    Tuple::new(atom.relation.clone(), node, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{AggKind, Atom, CmpOp, Constraint, Expr, Rule};
    use crate::value::Value;

    /// The MinCost rule set from §3.3 (same as the engine's test fixture).
    fn mincost_rules() -> RuleSet {
        let r1 = Rule::standard(
            "R1",
            Atom::new(
                "cost",
                Term::var("X"),
                vec![Term::var("Y"), Term::var("Y"), Term::var("K")],
            ),
            vec![Atom::new("link", Term::var("X"), vec![Term::var("Y"), Term::var("K")])],
            vec![],
        );
        let r2 = Rule::standard(
            "R2",
            Atom::new(
                "cost",
                Term::var("C"),
                vec![Term::var("D"), Term::var("B"), Term::var("K3")],
            ),
            vec![
                Atom::new("link", Term::var("B"), vec![Term::var("C"), Term::var("K1")]),
                Atom::new("bestCost", Term::var("B"), vec![Term::var("D"), Term::var("K2")]),
            ],
            vec![
                Constraint::Assign {
                    var: "K3".into(),
                    expr: Expr::var("K1") + Expr::var("K2"),
                },
                Constraint::Compare {
                    lhs: Expr::var("C"),
                    op: CmpOp::Ne,
                    rhs: Expr::var("D"),
                },
            ],
        );
        let r3 = Rule::aggregate(
            "R3",
            Atom::new("bestCost", Term::var("X"), vec![Term::var("Y"), Term::var("K")]),
            Atom::new(
                "cost",
                Term::var("X"),
                vec![Term::var("Y"), Term::var("Z"), Term::var("K")],
            ),
            AggKind::Min,
            "K",
        );
        RuleSet::new(vec![r1, r2, r3]).expect("valid rules")
    }

    fn link(at: u64, to: u64, cost: i64) -> Tuple {
        Tuple::new("link", NodeId(at), vec![Value::node(to), Value::Int(cost)])
    }

    fn best_cost_pattern(at: u64, to: u64) -> Tuple {
        Tuple::new("bestCost", NodeId(at), vec![Value::node(to), Value::Wild])
    }

    #[test]
    fn base_relation_absence_bottoms_out() {
        let witnesses = trace_absence(
            &mincost_rules(),
            NodeId(1),
            &Tuple::new("link", NodeId(1), vec![Value::node(2u64), Value::Wild]),
            &[],
            &[NodeId(1), NodeId(2)],
        );
        assert_eq!(witnesses, vec![AbsenceWitness::NoBaseInsertion]);
    }

    #[test]
    fn aggregate_absence_traces_to_missing_body() {
        // bestCost(@1, 4, *) absent on an empty store: R3's body cost(@1,4,…)
        // is missing.
        let witnesses = trace_absence(
            &mincost_rules(),
            NodeId(1),
            &best_cost_pattern(1, 4),
            &[],
            &[NodeId(1), NodeId(2)],
        );
        let missing = witnesses.iter().find_map(|w| match w {
            AbsenceWitness::MissingLocal { rule, missing } if rule == "R3" => Some(missing.clone()),
            _ => None,
        });
        let missing = missing.expect("R3's body must be reported missing");
        assert_eq!(missing.relation, "cost");
        assert_eq!(missing.location, NodeId(1));
        assert_eq!(missing.args[0], Value::node(4u64), "bound head vars are grounded");
        assert!(missing.args[2].is_wild(), "unjoined vars become wildcards");
    }

    #[test]
    fn remote_headed_rule_reports_candidate_senders() {
        // cost(@1, 4, *, *): R2 evaluates at B (unbound) → any peer could
        // have derived and shipped it; R1 evaluates locally → missing link.
        let pattern = Tuple::new("cost", NodeId(1), vec![Value::node(4u64), Value::Wild, Value::Wild]);
        let witnesses = trace_absence(
            &mincost_rules(),
            NodeId(1),
            &pattern,
            &[],
            &[NodeId(1), NodeId(2), NodeId(3)],
        );
        assert!(witnesses
            .iter()
            .any(|w| matches!(w, AbsenceWitness::MissingLocal { rule, .. } if rule == "R1")));
        let senders = witnesses.iter().find_map(|w| match w {
            AbsenceWitness::NeverReceived { rule, senders, .. } if rule == "R2" => Some(senders.clone()),
            _ => None,
        });
        assert_eq!(senders, Some(vec![NodeId(2), NodeId(3)]), "self is excluded");
    }

    #[test]
    fn satisfied_body_is_reported_as_derivable() {
        // With link(1,2,5) present, bestCost(@1, 2, *) is derivable: its
        // absence would be evidence of misbehavior.
        let present = [
            link(1, 2, 5),
            Tuple::new(
                "cost",
                NodeId(1),
                vec![Value::node(2u64), Value::node(2u64), Value::Int(5)],
            ),
        ];
        let witnesses = trace_absence(
            &mincost_rules(),
            NodeId(1),
            &best_cost_pattern(1, 2),
            &present,
            &[NodeId(1), NodeId(2)],
        );
        assert!(witnesses
            .iter()
            .any(|w| matches!(w, AbsenceWitness::Derivable { rule } if rule == "R3")));
    }

    #[test]
    fn failed_constraint_is_reported() {
        // R2 has C != D; ask for cost(@2, 2, …) with a link(@B=1, C=2) and
        // bestCost(@1, D=2) present — the body joins but C == D fails.
        let present = [
            link(1, 2, 1),
            Tuple::new("bestCost", NodeId(1), vec![Value::node(2u64), Value::Int(4)]),
        ];
        let pattern = Tuple::new(
            "cost",
            NodeId(2),
            vec![Value::node(2u64), Value::node(1u64), Value::Wild],
        );
        // Trace at node 1, the evaluation site (the head is homed at 2).
        let witnesses = trace_absence(&mincost_rules(), NodeId(1), &pattern, &present, &[NodeId(1), NodeId(2)]);
        assert!(
            witnesses
                .iter()
                .any(|w| matches!(w, AbsenceWitness::ConstraintFailed { rule } if rule == "R2")),
            "C != D must be reported as the failed constraint: {witnesses:?}"
        );
    }

    #[test]
    fn remote_sites_only_fan_out_at_the_tuples_home() {
        // Tracing cost(@1, …) at node 2 (a candidate sender) must not emit
        // NeverReceived again — node 2 either derives it locally or not.
        let pattern = Tuple::new("cost", NodeId(1), vec![Value::node(4u64), Value::Wild, Value::Wild]);
        let witnesses = trace_absence(&mincost_rules(), NodeId(2), &pattern, &[], &[NodeId(1), NodeId(2)]);
        assert!(
            !witnesses
                .iter()
                .any(|w| matches!(w, AbsenceWitness::NeverReceived { .. })),
            "no fan-out away from the home node: {witnesses:?}"
        );
        assert!(witnesses
            .iter()
            .any(|w| matches!(w, AbsenceWitness::MissingLocal { rule, .. } if rule == "R2")));
    }
}

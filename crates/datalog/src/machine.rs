//! The deterministic state-machine interface `A_i` (Appendix A.2).
//!
//! "We can model the expected behavior of a node i as a state machine A_i,
//! whose inputs are incoming messages and changes to base tuples, and whose
//! outputs are messages that need to be sent to other nodes."
//!
//! Appendix A.2 makes the interface precise: `A_i` accepts the inputs
//! `ins(β)`, `del(β)` and `rcv(m)`, and produces the outputs `der(τ)`,
//! `und(τ)` and `snd(m)`.  Both the rule-driven [`crate::engine::Engine`] and
//! the hand-written application state machines (MapReduce, the BGP proxy)
//! implement this trait; the graph construction algorithm and SNooPy's replay
//! are written against it, which is what lets a single provenance pipeline
//! serve all three provenance-extraction methods of §5.3.

use crate::absence::AbsenceWitness;
use crate::store::EvalMetrics;
use crate::tuple::Tuple;
use snp_crypto::keys::NodeId;
use std::fmt;

/// Whether a tuple notification announces appearance or disappearance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Polarity {
    /// `+τ`: the tuple appeared on the sender.
    Plus,
    /// `-τ`: the tuple disappeared from the sender.
    Minus,
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Polarity::Plus => write!(f, "+"),
            Polarity::Minus => write!(f, "-"),
        }
    }
}

/// A tuple-change notification `+τ` / `-τ` exchanged between nodes (§3.1:
/// "the nodes must notify each other of relevant tuple changes").
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleDelta {
    /// Appearance or disappearance.
    pub polarity: Polarity,
    /// The tuple in question.
    pub tuple: Tuple,
}

impl TupleDelta {
    /// A `+τ` notification.
    pub fn plus(tuple: Tuple) -> TupleDelta {
        TupleDelta {
            polarity: Polarity::Plus,
            tuple,
        }
    }

    /// A `-τ` notification.
    pub fn minus(tuple: Tuple) -> TupleDelta {
        TupleDelta {
            polarity: Polarity::Minus,
            tuple,
        }
    }

    /// Approximate wire size in bytes (1 byte polarity + encoded tuple).
    pub fn wire_size(&self) -> usize {
        1 + self.tuple.wire_size()
    }
}

impl fmt::Display for TupleDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.polarity, self.tuple)
    }
}

/// An input to the state machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SmInput {
    /// `ins(β)`: a base tuple was inserted locally.
    InsertBase(Tuple),
    /// `del(β)`: a base tuple was deleted locally.
    DeleteBase(Tuple),
    /// `rcv(m)`: a tuple notification arrived from another node.
    Receive {
        /// The sending node.
        from: NodeId,
        /// The notification.
        delta: TupleDelta,
    },
}

/// An output of the state machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SmOutput {
    /// `der(τ)`: a tuple was derived locally via `rule` from `body`.
    ///
    /// The body tuples are reported so that the provenance graph can connect
    /// the `derive` vertex to the `appear`/`exist`/`believe` vertices of its
    /// inputs (Appendix B, `handle-output-der`).
    Derive {
        /// The derived tuple.
        tuple: Tuple,
        /// Identifier of the rule that fired.
        rule: String,
        /// Instantiated body tuples the derivation used.
        body: Vec<Tuple>,
    },
    /// `und(τ)`: a previously derived tuple was underived.
    Underive {
        /// The underived tuple.
        tuple: Tuple,
        /// Identifier of the rule whose derivation vanished.
        rule: String,
        /// The body tuples of the vanished derivation.
        body: Vec<Tuple>,
    },
    /// `snd(m)`: a tuple notification must be sent to another node.
    Send {
        /// Destination node.
        to: NodeId,
        /// The notification to send.
        delta: TupleDelta,
    },
}

impl SmOutput {
    /// The tuple this output is about.
    pub fn tuple(&self) -> &Tuple {
        match self {
            SmOutput::Derive { tuple, .. } | SmOutput::Underive { tuple, .. } => tuple,
            SmOutput::Send { delta, .. } => &delta.tuple,
        }
    }
}

/// A deterministic per-node state machine (`A_i`).
///
/// Determinism (assumption 6 of §5.2) is essential: SNooPy's microquery
/// module re-runs the machine from a checkpoint during replay and expects to
/// obtain exactly the same outputs that were logged at runtime.
///
/// Machines must be `Send` so node handles can be shared with worker threads
/// (future sharded deployments run node groups in parallel).
pub trait StateMachine: Send {
    /// Feed one input and collect the outputs it produces.
    fn handle(&mut self, input: SmInput) -> Vec<SmOutput>;

    /// Create a fresh copy of this machine in its *initial* state.
    ///
    /// Used by replay: the querier reconstructs a node's provenance subgraph
    /// by running a fresh instance of the node's machine over the logged
    /// inputs (§5.5).
    fn fresh(&self) -> Box<dyn StateMachine>;

    /// Tuples currently present on the node (base, derived and believed).
    /// Used for checkpointing (§5.6) and state inspection in tests.
    fn current_tuples(&self) -> Vec<Tuple>;

    /// Serialize the machine's *complete* state into a deterministic byte
    /// snapshot, or `None` if the machine does not support snapshots.
    ///
    /// Snapshots are taken when a node seals a log epoch: the checkpoint that
    /// closes the epoch commits to `hash(snapshot)`, and a querier later
    /// [`StateMachine::restore`]s the snapshot into its own *expected*
    /// machine to replay only the log suffix after the checkpoint.  Two
    /// machines in the same state must produce byte-identical snapshots
    /// (determinism, assumption 6 of §5.2), and the snapshot must cover every
    /// bit of state that can influence future outputs — a partial snapshot
    /// would make an honest node's suffix replay diverge and frame it.
    fn snapshot(&self) -> Option<Vec<u8>> {
        None
    }

    /// Build a machine of this type whose state is loaded from `snapshot`.
    ///
    /// Called on the querier's *expected* (honest) machine, so only state —
    /// never behavior — comes from the audited node.  Implementations must
    /// reject malformed input instead of panicking: the bytes come from a
    /// potentially Byzantine node.
    fn restore(&self, snapshot: &[u8]) -> Result<Box<dyn StateMachine>, String> {
        let _ = snapshot;
        Err(format!("{} does not support snapshot restore", self.name()))
    }

    /// Negative provenance (`why_absent`): enumerate the ways a tuple
    /// matching `pattern` *could* have come to exist on this node, reporting
    /// each one's first missing or failed precondition.
    ///
    /// This is a *pure* function of the machine's protocol applied to an
    /// externally supplied state: `pattern` may contain [`crate::Value::Wild`]
    /// wildcards, `present` is the node's visible tuple set at the instant of
    /// interest (reconstructed by the querier from the node's verified log —
    /// never from this instance's own, possibly corrupted, state), and
    /// `peers` is the known node domain for candidate remote derivers.
    /// Implementations must be deterministic; rule-driven machines delegate
    /// to [`crate::absence::trace_absence`].
    ///
    /// The default returns no witnesses, which the querier renders as an
    /// unexplained (leaf) absence.
    fn absence_of(&self, pattern: &Tuple, present: &[Tuple], peers: &[NodeId]) -> Vec<AbsenceWitness> {
        let _ = (pattern, present, peers);
        Vec::new()
    }

    /// Per-rule evaluation counters (fires, index probes, candidates)
    /// accumulated since construction or restore.
    ///
    /// Rule-driven machines report real counters; hand-written machines keep
    /// the empty default.  The querier folds these into `QueryStats` after a
    /// replay.  Counters must be deterministic (they are compared across
    /// serial and parallel audits of the same history).
    fn eval_metrics(&self) -> EvalMetrics {
        EvalMetrics::default()
    }

    /// A short name identifying the machine type (for diagnostics).
    fn name(&self) -> String {
        "state-machine".to_string()
    }
}

/// Builds fresh instances of a node's *expected* machine.
///
/// [`StateMachine`] is `Send` but not `Sync`: a boxed machine can be moved
/// into a worker thread, but a single instance cannot be shared between
/// several.  A `MachineFactory` is the sharable half — it is `Send + Sync`,
/// so the querier can hold one per node and let every audit worker build its
/// *own* expected machine to replay on, instead of funnelling all replays
/// through one instance.  Every machine a factory builds must be in the
/// honest initial state (the same contract as [`StateMachine::fresh`]).
///
/// Any `Fn() -> Box<dyn StateMachine> + Send + Sync` closure is a factory:
///
/// ```ignore
/// let factory = move || Box::new(Engine::new(id, rules())) as Box<dyn StateMachine>;
/// ```
pub trait MachineFactory: Send + Sync {
    /// A new expected machine in its honest initial state.
    fn build(&self) -> Box<dyn StateMachine>;
}

impl<F: Fn() -> Box<dyn StateMachine> + Send + Sync> MachineFactory for F {
    fn build(&self) -> Box<dyn StateMachine> {
        self()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn delta_constructors_and_size() {
        let t = Tuple::new("link", NodeId(1), vec![Value::Int(5)]);
        let plus = TupleDelta::plus(t.clone());
        let minus = TupleDelta::minus(t.clone());
        assert_eq!(plus.polarity, Polarity::Plus);
        assert_eq!(minus.polarity, Polarity::Minus);
        assert_eq!(plus.wire_size(), 1 + t.wire_size());
        assert_eq!(format!("{plus}"), format!("+{t}"));
        assert_eq!(format!("{minus}"), format!("-{t}"));
    }

    #[test]
    fn output_tuple_accessor() {
        let t = Tuple::new("x", NodeId(1), vec![]);
        let out = SmOutput::Send {
            to: NodeId(2),
            delta: TupleDelta::plus(t.clone()),
        };
        assert_eq!(out.tuple(), &t);
        let der = SmOutput::Derive {
            tuple: t.clone(),
            rule: "R1".into(),
            body: vec![],
        };
        assert_eq!(der.tuple(), &t);
    }
}

//! Derivation rules, `maybe` rules, aggregation rules and constraints.
//!
//! A rule has the shape
//!
//! ```text
//! head(@H, …) :- body1(@B, …), body2(@B, …), constraint, …
//! ```
//!
//! All body atoms must share a single location (the *evaluation site*); the
//! head may be located elsewhere, in which case the engine ships the derived
//! tuple to its home node with a `+τ` notification — exactly the structure of
//! the paper's MinCost rule R2, whose derivation happens on `b` and whose
//! result `cost(@c,…)` is sent to `c` (Figure 2).

use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A variable binding environment produced while matching body atoms.
pub type Bindings = BTreeMap<String, Value>;

/// A term: either a variable or a constant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Term {
    /// A variable, e.g. `X`.
    Var(String),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Shorthand for a constant term.
    pub fn val(value: impl Into<Value>) -> Term {
        Term::Const(value.into())
    }

    /// Resolve the term under a binding environment.
    pub fn resolve(&self, bindings: &Bindings) -> Option<Value> {
        match self {
            Term::Const(v) => Some(v.clone()),
            Term::Var(name) => bindings.get(name).cloned(),
        }
    }

    /// Try to unify the term with a concrete value, extending `bindings`.
    pub fn unify(&self, value: &Value, bindings: &mut Bindings) -> bool {
        match self {
            Term::Const(v) => v == value,
            Term::Var(name) => match bindings.get(name) {
                Some(bound) => bound == value,
                None => {
                    bindings.insert(name.clone(), value.clone());
                    true
                }
            },
        }
    }
}

/// An arithmetic / value expression used in constraints and head arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A term (variable or constant).
    Term(Term),
    /// Integer addition.
    Add(Box<Expr>, Box<Expr>),
    /// Integer subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Integer minimum.
    Min(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// A variable expression.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Term(Term::var(name))
    }

    /// A constant expression.
    pub fn val(value: impl Into<Value>) -> Expr {
        Expr::Term(Term::val(value))
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;

    /// `self + other`.
    fn add(self, other: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(other))
    }
}

impl Expr {
    /// Evaluate under a binding environment.  Arithmetic on non-integers
    /// yields `None` (the rule simply does not fire).
    pub fn eval(&self, bindings: &Bindings) -> Option<Value> {
        match self {
            Expr::Term(t) => t.resolve(bindings),
            Expr::Add(a, b) => Some(Value::Int(
                a.eval(bindings)?.as_int()?.checked_add(b.eval(bindings)?.as_int()?)?,
            )),
            Expr::Sub(a, b) => Some(Value::Int(
                a.eval(bindings)?.as_int()?.checked_sub(b.eval(bindings)?.as_int()?)?,
            )),
            Expr::Min(a, b) => Some(Value::Int(a.eval(bindings)?.as_int()?.min(b.eval(bindings)?.as_int()?))),
        }
    }
}

/// Comparison operators usable in constraints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than (integers only).
    Lt,
    /// Less than or equal (integers only).
    Le,
    /// Strictly greater than (integers only).
    Gt,
    /// Greater than or equal (integers only).
    Ge,
}

/// A body constraint: either a comparison or an assignment that binds a new
/// variable to the value of an expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Constraint {
    /// `lhs op rhs` must hold.
    Compare {
        /// Left-hand side.
        lhs: Expr,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand side.
        rhs: Expr,
    },
    /// `var := expr` binds a fresh variable.
    Assign {
        /// Variable to bind.
        var: String,
        /// Expression whose value is bound.
        expr: Expr,
    },
}

impl Constraint {
    /// Apply the constraint under the bindings.  Returns `false` if the
    /// constraint fails; assignments extend the bindings and return `true`.
    pub fn apply(&self, bindings: &mut Bindings) -> bool {
        match self {
            Constraint::Assign { var, expr } => match expr.eval(bindings) {
                Some(value) => {
                    // An assignment to an already-bound variable degenerates
                    // to an equality check.
                    match bindings.get(var) {
                        Some(existing) => *existing == value,
                        None => {
                            bindings.insert(var.clone(), value);
                            true
                        }
                    }
                }
                None => false,
            },
            Constraint::Compare { lhs, op, rhs } => {
                let (Some(l), Some(r)) = (lhs.eval(bindings), rhs.eval(bindings)) else {
                    return false;
                };
                match op {
                    CmpOp::Eq => l == r,
                    CmpOp::Ne => l != r,
                    CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                        let (Some(li), Some(ri)) = (l.as_int(), r.as_int()) else {
                            return false;
                        };
                        match op {
                            CmpOp::Lt => li < ri,
                            CmpOp::Le => li <= ri,
                            CmpOp::Gt => li > ri,
                            CmpOp::Ge => li >= ri,
                            _ => unreachable!(),
                        }
                    }
                }
            }
        }
    }
}

/// An atom `rel(@Loc, t1, …, tk)` appearing in a rule head or body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Location term (`@Loc`).
    pub location: Term,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    pub fn new(relation: impl Into<String>, location: Term, args: Vec<Term>) -> Atom {
        Atom {
            relation: relation.into(),
            location,
            args,
        }
    }

    /// Try to match this atom against a concrete tuple, extending `bindings`.
    pub fn matches(&self, tuple: &Tuple, bindings: &mut Bindings) -> bool {
        if self.relation != tuple.relation || self.args.len() != tuple.args.len() {
            return false;
        }
        if !self.location.unify(&Value::Node(tuple.location), bindings) {
            return false;
        }
        self.args
            .iter()
            .zip(&tuple.args)
            .all(|(term, value)| term.unify(value, bindings))
    }

    /// Instantiate the atom into a tuple under complete bindings.
    pub fn instantiate(&self, bindings: &Bindings) -> Option<Tuple> {
        let location = self.location.resolve(bindings)?.as_node()?;
        let args = self
            .args
            .iter()
            .map(|t| t.resolve(bindings))
            .collect::<Option<Vec<_>>>()?;
        Some(Tuple::new(self.relation.clone(), location, args))
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(@{:?}", self.relation, self.location)?;
        for a in &self.args {
            write!(f, ",{a:?}")?;
        }
        write!(f, ")")
    }
}

/// The kind of a rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleKind {
    /// A standard rule: the head *must* be derived whenever the body holds.
    Standard,
    /// A `maybe` rule (§3.4): the head *may* be derived while the body holds;
    /// the decision is made by the application, not by the engine.
    Maybe,
}

/// Aggregation functions supported by aggregation rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggKind {
    /// Minimum of the aggregated column (e.g. `bestCost`).
    Min,
    /// Maximum of the aggregated column.
    Max,
    /// Count of matching tuples.
    Count,
}

/// A derivation rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// Rule identifier (e.g. `"R2"`); recorded in `derive` vertices.
    pub id: String,
    /// Standard or `maybe`.
    pub kind: RuleKind,
    /// Head atom.
    pub head: Atom,
    /// Body atoms (all at the same location).
    pub body: Vec<Atom>,
    /// Constraints and assignments evaluated after the body joins.
    pub constraints: Vec<Constraint>,
    /// If set, the rule is an aggregation over the single body atom: the last
    /// head argument is the aggregate of the body variable named here, grouped
    /// by the remaining head arguments.
    pub aggregate: Option<(AggKind, String)>,
}

impl Rule {
    /// Construct a standard (non-aggregate) rule.
    pub fn standard(id: impl Into<String>, head: Atom, body: Vec<Atom>, constraints: Vec<Constraint>) -> Rule {
        Rule {
            id: id.into(),
            kind: RuleKind::Standard,
            head,
            body,
            constraints,
            aggregate: None,
        }
    }

    /// Construct a `maybe` rule.
    pub fn maybe(id: impl Into<String>, head: Atom, body: Vec<Atom>, constraints: Vec<Constraint>) -> Rule {
        Rule {
            id: id.into(),
            kind: RuleKind::Maybe,
            head,
            body,
            constraints,
            aggregate: None,
        }
    }

    /// Construct an aggregation rule (`Min`/`Max`/`Count` over `agg_var`).
    pub fn aggregate(id: impl Into<String>, head: Atom, body: Atom, kind: AggKind, agg_var: impl Into<String>) -> Rule {
        Rule {
            id: id.into(),
            kind: RuleKind::Standard,
            head,
            body: vec![body],
            constraints: Vec::new(),
            aggregate: Some((kind, agg_var.into())),
        }
    }

    /// The body location variable/constant.  Returns an error string if the
    /// body atoms do not share a single location term (the engine requires
    /// localized rules).
    pub fn evaluation_site(&self) -> Result<&Term, String> {
        let mut site: Option<&Term> = None;
        for atom in &self.body {
            match site {
                None => site = Some(&atom.location),
                Some(existing) if *existing == atom.location => {}
                Some(existing) => {
                    return Err(format!(
                        "rule {}: body atoms at different locations ({existing:?} vs {:?}); localize the rule first",
                        self.id, atom.location
                    ))
                }
            }
        }
        site.ok_or_else(|| format!("rule {}: empty body", self.id))
    }

    /// Whether the head is (syntactically) at the same location as the body.
    pub fn is_local(&self) -> bool {
        match self.evaluation_site() {
            Ok(site) => *site == self.head.location,
            Err(_) => false,
        }
    }

    /// Relations mentioned in the body.
    pub fn body_relations(&self) -> impl Iterator<Item = &str> {
        self.body.iter().map(|a| a.relation.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_crypto::keys::NodeId;

    fn link_atom() -> Atom {
        Atom::new("link", Term::var("B"), vec![Term::var("C"), Term::var("K1")])
    }

    #[test]
    fn term_unification() {
        let mut b = Bindings::new();
        assert!(Term::var("X").unify(&Value::Int(3), &mut b));
        assert!(Term::var("X").unify(&Value::Int(3), &mut b));
        assert!(!Term::var("X").unify(&Value::Int(4), &mut b));
        assert!(Term::val(5i64).unify(&Value::Int(5), &mut b));
        assert!(!Term::val(5i64).unify(&Value::Int(6), &mut b));
    }

    #[test]
    fn atom_matching_binds_location_and_args() {
        let atom = link_atom();
        let tuple = Tuple::new("link", NodeId(2), vec![Value::node(3u64), Value::Int(7)]);
        let mut b = Bindings::new();
        assert!(atom.matches(&tuple, &mut b));
        assert_eq!(b["B"], Value::Node(NodeId(2)));
        assert_eq!(b["C"], Value::Node(NodeId(3)));
        assert_eq!(b["K1"], Value::Int(7));
    }

    #[test]
    fn atom_matching_rejects_wrong_relation_or_arity() {
        let atom = link_atom();
        let mut b = Bindings::new();
        assert!(!atom.matches(
            &Tuple::new("route", NodeId(2), vec![Value::Int(1), Value::Int(2)]),
            &mut b
        ));
        assert!(!atom.matches(&Tuple::new("link", NodeId(2), vec![Value::Int(1)]), &mut b));
    }

    #[test]
    fn atom_instantiation() {
        let atom = Atom::new("cost", Term::var("C"), vec![Term::var("D"), Term::var("K")]);
        let mut b = Bindings::new();
        b.insert("C".into(), Value::node(1u64));
        b.insert("D".into(), Value::node(2u64));
        b.insert("K".into(), Value::Int(9));
        let t = atom.instantiate(&b).unwrap();
        assert_eq!(t, Tuple::new("cost", NodeId(1), vec![Value::node(2u64), Value::Int(9)]));
        b.remove("K");
        assert!(atom.instantiate(&b).is_none());
    }

    #[test]
    fn expressions_evaluate() {
        let mut b = Bindings::new();
        b.insert("K1".into(), Value::Int(2));
        b.insert("K2".into(), Value::Int(3));
        assert_eq!((Expr::var("K1") + Expr::var("K2")).eval(&b), Some(Value::Int(5)));
        assert_eq!(
            Expr::Sub(Box::new(Expr::val(10i64)), Box::new(Expr::var("K1"))).eval(&b),
            Some(Value::Int(8))
        );
        assert_eq!(
            Expr::Min(Box::new(Expr::var("K1")), Box::new(Expr::var("K2"))).eval(&b),
            Some(Value::Int(2))
        );
        assert_eq!(Expr::var("missing").eval(&b), None);
    }

    #[test]
    fn arithmetic_on_strings_fails_gracefully() {
        let mut b = Bindings::new();
        b.insert("S".into(), Value::str("x"));
        assert_eq!((Expr::var("S") + Expr::val(1i64)).eval(&b), None);
    }

    #[test]
    fn constraints_compare_and_assign() {
        let mut b = Bindings::new();
        b.insert("K1".into(), Value::Int(2));
        b.insert("K2".into(), Value::Int(3));
        assert!(Constraint::Compare {
            lhs: Expr::var("K1"),
            op: CmpOp::Lt,
            rhs: Expr::var("K2")
        }
        .apply(&mut b));
        assert!(!Constraint::Compare {
            lhs: Expr::var("K1"),
            op: CmpOp::Gt,
            rhs: Expr::var("K2")
        }
        .apply(&mut b));
        assert!(Constraint::Assign {
            var: "K3".into(),
            expr: Expr::var("K1") + Expr::var("K2")
        }
        .apply(&mut b));
        assert_eq!(b["K3"], Value::Int(5));
        // Re-assigning to the same value is fine; to a different value fails.
        assert!(Constraint::Assign {
            var: "K3".into(),
            expr: Expr::val(5i64)
        }
        .apply(&mut b));
        assert!(!Constraint::Assign {
            var: "K3".into(),
            expr: Expr::val(6i64)
        }
        .apply(&mut b));
    }

    #[test]
    fn string_comparison_only_supports_eq_ne() {
        let mut b = Bindings::new();
        b.insert("A".into(), Value::str("x"));
        b.insert("B".into(), Value::str("y"));
        assert!(Constraint::Compare {
            lhs: Expr::var("A"),
            op: CmpOp::Ne,
            rhs: Expr::var("B")
        }
        .apply(&mut b));
        assert!(!Constraint::Compare {
            lhs: Expr::var("A"),
            op: CmpOp::Lt,
            rhs: Expr::var("B")
        }
        .apply(&mut b));
    }

    #[test]
    fn evaluation_site_detection() {
        let local = Rule::standard(
            "R1",
            Atom::new("cost", Term::var("X"), vec![Term::var("Y"), Term::var("K")]),
            vec![Atom::new("link", Term::var("X"), vec![Term::var("Y"), Term::var("K")])],
            vec![],
        );
        assert!(local.is_local());
        assert_eq!(local.evaluation_site().unwrap(), &Term::var("X"));

        let remote_head = Rule::standard(
            "R2",
            Atom::new("cost", Term::var("C"), vec![Term::var("D"), Term::var("K")]),
            vec![Atom::new("link", Term::var("B"), vec![Term::var("C"), Term::var("K")])],
            vec![],
        );
        assert!(!remote_head.is_local());

        let bad = Rule::standard(
            "R3",
            Atom::new("x", Term::var("A"), vec![]),
            vec![
                Atom::new("p", Term::var("A"), vec![]),
                Atom::new("q", Term::var("B"), vec![]),
            ],
            vec![],
        );
        assert!(bad.evaluation_site().is_err());
    }
}

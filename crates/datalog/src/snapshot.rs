//! Deterministic state-snapshot encoding (§5.6's checkpoints, epoch edition).
//!
//! When a node seals a log epoch it snapshots its state machine so that a
//! querier can later *restore* the machine and replay only the log suffix
//! after the checkpoint instead of the whole history.  The snapshot must be
//!
//! * **deterministic** — two machines in the same state produce byte-identical
//!   snapshots, so the digest committed in the (signed) checkpoint is
//!   reproducible, and
//! * **self-contained data** — the querier loads the bytes into its own
//!   *expected* machine; a compromised node can only forge state, never code.
//!
//! This module provides the little-endianless (everything big-endian) byte
//! writer/reader both the rule [`crate::engine::Engine`] and the hand-written
//! application machines use, plus decoding for [`Value`] and [`Tuple`]
//! (their stable `encode` form already existed for hashing).

use crate::tuple::Tuple;
use crate::value::Value;
use snp_crypto::keys::NodeId;

/// Error produced while decoding a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

fn err(what: &str) -> SnapshotError {
    SnapshotError(what.to_string())
}

/// Append-only snapshot writer.
#[derive(Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

// Manual impl: dumping the raw buffer swamps test output; the length is
// what matters when debugging.
impl std::fmt::Debug for SnapshotWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotWriter")
            .field("bytes", &self.buf.len())
            .finish()
    }
}

impl SnapshotWriter {
    /// Start an empty snapshot.
    pub fn new() -> SnapshotWriter {
        SnapshotWriter::default()
    }

    /// Finish and return the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Write a u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write an i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write a u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Write a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a node id.
    pub fn node(&mut self, n: NodeId) {
        self.buf.extend_from_slice(&n.to_bytes());
    }

    /// Write a length-prefixed string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write a value (tagged, same encoding as [`Value::encode`]).
    pub fn value(&mut self, v: &Value) {
        v.encode(&mut self.buf);
    }

    /// Write a tuple (same encoding as [`Tuple::encode`]).
    pub fn tuple(&mut self, t: &Tuple) {
        self.buf.extend_from_slice(&t.encode());
    }
}

/// Cursor-based snapshot reader; every method fails cleanly on truncated or
/// malformed input (snapshots cross a trust boundary).
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

// Manual impl: the cursor position against the total length is the useful
// part; the raw bytes are not.
impl std::fmt::Debug for SnapshotReader<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotReader")
            .field("pos", &self.pos)
            .field("len", &self.buf.len())
            .finish()
    }
}

impl<'a> SnapshotReader<'a> {
    /// Read from `buf`.
    pub fn new(buf: &'a [u8]) -> SnapshotReader<'a> {
        SnapshotReader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Fail unless the whole input was consumed (trailing garbage in a
    /// snapshot is as suspicious as a short read).
    pub fn expect_exhausted(&self) -> Result<(), SnapshotError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(err("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or_else(|| err("length overflow"))?;
        if end > self.buf.len() {
            return Err(err("unexpected end of input"));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Read a u64.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read a length field and sanity-check it against the remaining input so
    /// a forged snapshot cannot trigger huge allocations.
    pub fn read_len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        if n > self.buf.len() as u64 {
            return Err(err("length exceeds input"));
        }
        // Lossless: bounded by `buf.len()`, itself a usize.
        #[allow(clippy::cast_possible_truncation)]
        Ok(n as usize)
    }

    /// Read an i64.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read a u32.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a node id.
    pub fn node(&mut self) -> Result<NodeId, SnapshotError> {
        Ok(NodeId(self.u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.read_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| err("invalid utf-8"))
    }

    /// Read a tagged [`Value`].
    pub fn value(&mut self) -> Result<Value, SnapshotError> {
        match self.u8()? {
            0x01 => Ok(Value::Int(self.i64()?)),
            0x02 => Ok(Value::Str(self.str_body()?)),
            0x03 => Ok(Value::Node(self.node()?)),
            0x04 => {
                let n = self.read_len()?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value()?);
                }
                Ok(Value::List(items))
            }
            tag => Err(err(&format!("unknown value tag {tag:#x}"))),
        }
    }

    fn str_body(&mut self) -> Result<String, SnapshotError> {
        let n = self.read_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| err("invalid utf-8"))
    }

    /// Read a [`Tuple`] (inverse of [`Tuple::encode`]).
    pub fn tuple(&mut self) -> Result<Tuple, SnapshotError> {
        let relation = self.str()?;
        let location = self.node()?;
        let argc = self.read_len()?;
        let mut args = Vec::with_capacity(argc);
        for _ in 0..argc {
            args.push(self.value()?);
        }
        Ok(Tuple {
            relation,
            location,
            args,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tuple() -> Tuple {
        Tuple::new(
            "route",
            NodeId(3),
            vec![
                Value::Int(-7),
                Value::str("10.0.0.0/8"),
                Value::node(9u64),
                Value::List(vec![Value::node(1u64), Value::node(2u64)]),
            ],
        )
    }

    #[test]
    fn tuple_roundtrips_through_its_stable_encoding() {
        let t = sample_tuple();
        let mut w = SnapshotWriter::new();
        w.tuple(&t);
        let bytes = w.finish();
        assert_eq!(bytes, t.encode(), "writer must reuse the stable encoding");
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.tuple().unwrap(), t);
        assert!(r.expect_exhausted().is_ok());
    }

    #[test]
    fn scalars_roundtrip() {
        let mut w = SnapshotWriter::new();
        w.u64(42);
        w.i64(-42);
        w.u32(7);
        w.u8(255);
        w.node(NodeId(5));
        w.str("hello");
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u8().unwrap(), 255);
        assert_eq!(r.node().unwrap(), NodeId(5));
        assert_eq!(r.str().unwrap(), "hello");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let mut w = SnapshotWriter::new();
        w.tuple(&sample_tuple());
        let bytes = w.finish();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let mut r = SnapshotReader::new(&bytes[..cut]);
            assert!(r.tuple().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut w = SnapshotWriter::new();
        w.u64(u64::MAX);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes);
        assert!(r.read_len().is_err());
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut w = SnapshotWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes);
        r.u8().unwrap();
        assert!(r.expect_exhausted().is_err());
    }
}

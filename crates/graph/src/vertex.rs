//! Vertex types, colors and identities.

use snp_crypto::keys::NodeId;
use snp_crypto::Digest;
use snp_datalog::{Polarity, Tuple, TupleDelta};
use std::fmt;

/// Node-local timestamps, in microseconds (§3.2: "The timestamps t should be
/// interpreted relative to node n").
pub type Timestamp = u64;

/// Vertex colors (§3.2 and §4.2).
///
/// * `Yellow` — the vertex's true color is not yet known (e.g. the hosting
///   node has not yet responded to a `retrieve`).
/// * `Black` — the vertex is legitimate.
/// * `Red` — the vertex is evidence of misbehavior on `host(v)`.
///
/// The order `red > black > yellow` is the *dominance* order of Appendix B.2;
/// graph union keeps the dominant color.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Color {
    /// True color not yet known.
    Yellow,
    /// Legitimate.
    Black,
    /// Evidence of misbehavior.
    Red,
}

impl Color {
    /// The dominant of two colors (`red > black > yellow`).
    pub fn dominant(self, other: Color) -> Color {
        self.max(other)
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Color::Yellow => write!(f, "yellow"),
            Color::Black => write!(f, "black"),
            Color::Red => write!(f, "red"),
        }
    }
}

/// The twelve vertex kinds of the SNP provenance graph (§3.2), plus the
/// `checkpoint` leaf produced by checkpoint-anchored suffix replay (§5.6).
///
/// `exist` and `believe` vertices carry an interval whose upper end is `None`
/// while the tuple still exists / is still believed; all other kinds carry a
/// single timestamp.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VertexKind {
    /// Base tuple `tuple` was inserted on `node` at `time`.
    Insert {
        /// Hosting node.
        node: NodeId,
        /// The inserted base tuple.
        tuple: Tuple,
        /// Local time of the insertion.
        time: Timestamp,
    },
    /// Base tuple `tuple` was deleted on `node` at `time`.
    Delete {
        /// Hosting node.
        node: NodeId,
        /// The deleted base tuple.
        tuple: Tuple,
        /// Local time of the deletion.
        time: Timestamp,
    },
    /// Tuple `tuple` appeared on `node` at `time`.
    Appear {
        /// Hosting node.
        node: NodeId,
        /// The tuple that appeared.
        tuple: Tuple,
        /// Local time of the appearance.
        time: Timestamp,
    },
    /// Tuple `tuple` disappeared from `node` at `time`.
    Disappear {
        /// Hosting node.
        node: NodeId,
        /// The tuple that disappeared.
        tuple: Tuple,
        /// Local time of the disappearance.
        time: Timestamp,
    },
    /// Tuple `tuple` existed on `node` during `[from, until]`.
    Exist {
        /// Hosting node.
        node: NodeId,
        /// The existing tuple.
        tuple: Tuple,
        /// Start of the interval.
        from: Timestamp,
        /// End of the interval; `None` while the tuple still exists.
        until: Option<Timestamp>,
    },
    /// Tuple `tuple` was derived on `node` via `rule` at `time`.
    Derive {
        /// Hosting (deriving) node.
        node: NodeId,
        /// The derived tuple.
        tuple: Tuple,
        /// Identifier of the rule that fired.
        rule: String,
        /// Local time of the derivation.
        time: Timestamp,
    },
    /// Tuple `tuple` was underived on `node` via `rule` at `time`.
    Underive {
        /// Hosting node.
        node: NodeId,
        /// The underived tuple.
        tuple: Tuple,
        /// Identifier of the rule.
        rule: String,
        /// Local time of the underivation.
        time: Timestamp,
    },
    /// At `time`, `node` sent `±tuple` to `peer`.
    Send {
        /// Sending node (the host).
        node: NodeId,
        /// Destination node.
        peer: NodeId,
        /// The notification that was sent.
        delta: TupleDelta,
        /// Local send time (as stamped by the sender).
        time: Timestamp,
    },
    /// At `time`, `node` received `±tuple` from `peer`.
    Receive {
        /// Receiving node (the host).
        node: NodeId,
        /// Originating node.
        peer: NodeId,
        /// The notification that was received.
        delta: TupleDelta,
        /// Local receive time.
        time: Timestamp,
    },
    /// At `time`, `node` learned that `tuple` appeared on `peer`.
    BelieveAppear {
        /// Believing node (the host).
        node: NodeId,
        /// The node the belief is about.
        peer: NodeId,
        /// The tuple believed to have appeared.
        tuple: Tuple,
        /// Local time the belief was formed.
        time: Timestamp,
    },
    /// At `time`, `node` learned that `tuple` disappeared from `peer`.
    BelieveDisappear {
        /// Believing node (the host).
        node: NodeId,
        /// The node the belief is about.
        peer: NodeId,
        /// The tuple believed to have disappeared.
        tuple: Tuple,
        /// Local time the belief was dropped.
        time: Timestamp,
    },
    /// During `[from, until]`, `node` believed `tuple` existed on `peer`.
    Believe {
        /// Believing node (the host).
        node: NodeId,
        /// The node the belief is about.
        peer: NodeId,
        /// The believed tuple.
        tuple: Tuple,
        /// Start of the belief interval.
        from: Timestamp,
        /// End of the interval; `None` while the belief still holds.
        until: Option<Timestamp>,
    },
    /// `tuple` was recorded on `node` by a verified epoch checkpoint sealed
    /// at `time` (§5.6).  Checkpoint vertices are the legitimate leaves of
    /// explanations produced by checkpoint-anchored suffix replay: the
    /// tuple's pre-checkpoint provenance was truncated, but its existence at
    /// the boundary is vouched for by the node's signed Merkle checkpoint.
    Checkpoint {
        /// Hosting node.
        node: NodeId,
        /// The checkpointed tuple.
        tuple: Tuple,
        /// Local time the checkpoint was sealed.
        time: Timestamp,
    },
    /// No tuple matching `tuple` (a possibly wildcarded pattern) existed on
    /// `node` at `time` — a *verified negative*, established by replaying the
    /// node's tamper-evident log and finding no covering existence interval.
    /// Negative provenance (`why_absent`) anchors at an `absence` vertex; its
    /// predecessors are either the `disappear` event that ended the tuple's
    /// last existence interval, or the `missing-precondition` vertices
    /// explaining why it could never be derived.  An absence with no
    /// predecessors is a base-tuple that was simply never inserted — a
    /// legitimate leaf, the negative analogue of `insert`.
    Absence {
        /// The node the absence is about.
        node: NodeId,
        /// The missing tuple (pattern).
        tuple: Tuple,
        /// The instant of interest.
        time: Timestamp,
    },
    /// A precondition that would have let a tuple be derived on `node` was
    /// itself missing at `time`: `rule` could have fired, but no tuple
    /// matching `tuple` was available — either never derivable locally
    /// (`peer` = `None`; explained by a predecessor `absence` vertex) or
    /// never received from the candidate sender `peer` (explained by the
    /// sender's own `absence`, or by its red `send` vertex when it logged a
    /// send it never delivered).
    MissingPrecondition {
        /// The node whose derivation was blocked.
        node: NodeId,
        /// The missing precondition tuple (pattern).
        tuple: Tuple,
        /// The rule (or policy) that could have fired, if known.
        rule: Option<String>,
        /// The candidate sender, for never-received message preconditions.
        peer: Option<NodeId>,
        /// The instant of interest.
        time: Timestamp,
    },
}

impl VertexKind {
    /// The node responsible for this vertex (`host(v)` in the paper).
    pub fn host(&self) -> NodeId {
        match self {
            VertexKind::Insert { node, .. }
            | VertexKind::Delete { node, .. }
            | VertexKind::Appear { node, .. }
            | VertexKind::Disappear { node, .. }
            | VertexKind::Exist { node, .. }
            | VertexKind::Derive { node, .. }
            | VertexKind::Underive { node, .. }
            | VertexKind::Send { node, .. }
            | VertexKind::Receive { node, .. }
            | VertexKind::BelieveAppear { node, .. }
            | VertexKind::BelieveDisappear { node, .. }
            | VertexKind::Believe { node, .. }
            | VertexKind::Checkpoint { node, .. }
            | VertexKind::Absence { node, .. }
            | VertexKind::MissingPrecondition { node, .. } => *node,
        }
    }

    /// The tuple the vertex talks about.
    pub fn tuple(&self) -> &Tuple {
        match self {
            VertexKind::Insert { tuple, .. }
            | VertexKind::Delete { tuple, .. }
            | VertexKind::Appear { tuple, .. }
            | VertexKind::Disappear { tuple, .. }
            | VertexKind::Exist { tuple, .. }
            | VertexKind::Derive { tuple, .. }
            | VertexKind::Underive { tuple, .. }
            | VertexKind::BelieveAppear { tuple, .. }
            | VertexKind::BelieveDisappear { tuple, .. }
            | VertexKind::Believe { tuple, .. }
            | VertexKind::Checkpoint { tuple, .. }
            | VertexKind::Absence { tuple, .. }
            | VertexKind::MissingPrecondition { tuple, .. } => tuple,
            VertexKind::Send { delta, .. } | VertexKind::Receive { delta, .. } => &delta.tuple,
        }
    }

    /// The vertex's primary timestamp (start of interval for `exist` /
    /// `believe`).
    pub fn time(&self) -> Timestamp {
        match self {
            VertexKind::Insert { time, .. }
            | VertexKind::Delete { time, .. }
            | VertexKind::Appear { time, .. }
            | VertexKind::Disappear { time, .. }
            | VertexKind::Derive { time, .. }
            | VertexKind::Underive { time, .. }
            | VertexKind::Send { time, .. }
            | VertexKind::Receive { time, .. }
            | VertexKind::BelieveAppear { time, .. }
            | VertexKind::BelieveDisappear { time, .. }
            | VertexKind::Checkpoint { time, .. }
            | VertexKind::Absence { time, .. }
            | VertexKind::MissingPrecondition { time, .. } => *time,
            VertexKind::Exist { from, .. } | VertexKind::Believe { from, .. } => *from,
        }
    }

    /// A short label for the kind (used in Display output and in the edge
    /// compatibility table).
    pub fn kind_name(&self) -> &'static str {
        match self {
            VertexKind::Insert { .. } => "insert",
            VertexKind::Delete { .. } => "delete",
            VertexKind::Appear { .. } => "appear",
            VertexKind::Disappear { .. } => "disappear",
            VertexKind::Exist { .. } => "exist",
            VertexKind::Derive { .. } => "derive",
            VertexKind::Underive { .. } => "underive",
            VertexKind::Send { .. } => "send",
            VertexKind::Receive { .. } => "receive",
            VertexKind::BelieveAppear { .. } => "believe-appear",
            VertexKind::BelieveDisappear { .. } => "believe-disappear",
            VertexKind::Believe { .. } => "believe",
            VertexKind::Checkpoint { .. } => "checkpoint",
            VertexKind::Absence { .. } => "absence",
            VertexKind::MissingPrecondition { .. } => "missing-precondition",
        }
    }

    /// The identity of the vertex: all fields *except* the mutable interval
    /// end of `exist` / `believe` vertices (which the GCA updates in place,
    /// cf. `replace-with` in Figure 10).
    pub fn identity(&self) -> VertexId {
        let mut normalized = self.clone();
        match &mut normalized {
            VertexKind::Exist { until, .. } | VertexKind::Believe { until, .. } => *until = None,
            _ => {}
        }
        let mut bytes = Vec::new();
        bytes.extend_from_slice(normalized.kind_name().as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&normalized.host().to_bytes());
        bytes.extend_from_slice(&normalized.time().to_be_bytes());
        bytes.extend_from_slice(&normalized.tuple().encode());
        match &normalized {
            VertexKind::Send { peer, delta, .. } | VertexKind::Receive { peer, delta, .. } => {
                bytes.extend_from_slice(&peer.to_bytes());
                bytes.push(match delta.polarity {
                    Polarity::Plus => b'+',
                    Polarity::Minus => b'-',
                });
            }
            VertexKind::BelieveAppear { peer, .. }
            | VertexKind::BelieveDisappear { peer, .. }
            | VertexKind::Believe { peer, .. } => {
                bytes.extend_from_slice(&peer.to_bytes());
            }
            VertexKind::Derive { rule, .. } | VertexKind::Underive { rule, .. } => {
                bytes.extend_from_slice(rule.as_bytes());
            }
            VertexKind::MissingPrecondition { rule, peer, .. } => {
                if let Some(rule) = rule {
                    bytes.extend_from_slice(rule.as_bytes());
                }
                bytes.push(0);
                if let Some(peer) = peer {
                    bytes.extend_from_slice(&peer.to_bytes());
                }
            }
            _ => {}
        }
        VertexId(snp_crypto::hash(&bytes))
    }
}

impl fmt::Display for VertexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VertexKind::Exist {
                node,
                tuple,
                from,
                until,
            } => {
                write!(
                    f,
                    "EXIST({node}, {tuple}, [{from}, {}])",
                    until.map(|u| u.to_string()).unwrap_or_else(|| "now".into())
                )
            }
            VertexKind::Believe {
                node,
                peer,
                tuple,
                from,
                until,
            } => {
                write!(
                    f,
                    "BELIEVE({node}, {peer}, {tuple}, [{from}, {}])",
                    until.map(|u| u.to_string()).unwrap_or_else(|| "now".into())
                )
            }
            VertexKind::Send {
                node,
                peer,
                delta,
                time,
            } => write!(f, "SEND({node}, {peer}, {delta}, {time})"),
            VertexKind::Receive {
                node,
                peer,
                delta,
                time,
            } => write!(f, "RECEIVE({node}, {peer}, {delta}, {time})"),
            VertexKind::BelieveAppear {
                node,
                peer,
                tuple,
                time,
            } => {
                write!(f, "BELIEVE-APPEAR({node}, {peer}, {tuple}, {time})")
            }
            VertexKind::BelieveDisappear {
                node,
                peer,
                tuple,
                time,
            } => {
                write!(f, "BELIEVE-DISAPPEAR({node}, {peer}, {tuple}, {time})")
            }
            VertexKind::Derive {
                node,
                tuple,
                rule,
                time,
            } => write!(f, "DERIVE({node}, {tuple}, {rule}, {time})"),
            VertexKind::Underive {
                node,
                tuple,
                rule,
                time,
            } => write!(f, "UNDERIVE({node}, {tuple}, {rule}, {time})"),
            VertexKind::MissingPrecondition {
                node,
                tuple,
                rule,
                peer,
                time,
            } => {
                write!(f, "MISSING-PRECONDITION({node}, {tuple}")?;
                if let Some(rule) = rule {
                    write!(f, ", rule {rule}")?;
                }
                if let Some(peer) = peer {
                    write!(f, ", never received from {peer}")?;
                }
                write!(f, ", {time})")
            }
            other => write!(
                f,
                "{}({}, {}, {})",
                other.kind_name().to_uppercase(),
                other.host(),
                other.tuple(),
                other.time()
            ),
        }
    }
}

/// A stable identifier for a vertex (content hash of its identity fields).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub Digest);

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v:{}", self.0.short())
    }
}

/// A vertex: its kind (identity + interval) plus its current color.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vertex {
    /// The vertex kind and payload.
    pub kind: VertexKind,
    /// The current color.
    pub color: Color,
}

impl Vertex {
    /// Create a vertex with an explicit color.
    pub fn new(kind: VertexKind, color: Color) -> Vertex {
        Vertex { kind, color }
    }

    /// The vertex identity.
    pub fn id(&self) -> VertexId {
        self.kind.identity()
    }

    /// `host(v)`.
    pub fn host(&self) -> NodeId {
        self.kind.host()
    }
}

impl fmt::Display for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.kind, self.color)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_datalog::Value;

    fn tuple() -> Tuple {
        Tuple::new("link", NodeId(1), vec![Value::Int(5)])
    }

    #[test]
    fn color_dominance() {
        assert_eq!(Color::Yellow.dominant(Color::Black), Color::Black);
        assert_eq!(Color::Black.dominant(Color::Red), Color::Red);
        assert_eq!(Color::Red.dominant(Color::Yellow), Color::Red);
        assert_eq!(Color::Yellow.dominant(Color::Yellow), Color::Yellow);
    }

    #[test]
    fn exist_identity_ignores_interval_end() {
        let open = VertexKind::Exist {
            node: NodeId(1),
            tuple: tuple(),
            from: 10,
            until: None,
        };
        let closed = VertexKind::Exist {
            node: NodeId(1),
            tuple: tuple(),
            from: 10,
            until: Some(99),
        };
        assert_eq!(open.identity(), closed.identity());
        let different_start = VertexKind::Exist {
            node: NodeId(1),
            tuple: tuple(),
            from: 11,
            until: None,
        };
        assert_ne!(open.identity(), different_start.identity());
    }

    #[test]
    fn different_kinds_have_different_identities() {
        let appear = VertexKind::Appear {
            node: NodeId(1),
            tuple: tuple(),
            time: 10,
        };
        let insert = VertexKind::Insert {
            node: NodeId(1),
            tuple: tuple(),
            time: 10,
        };
        assert_ne!(appear.identity(), insert.identity());
    }

    #[test]
    fn send_identity_includes_polarity_and_peer() {
        let plus = VertexKind::Send {
            node: NodeId(1),
            peer: NodeId(2),
            delta: TupleDelta::plus(tuple()),
            time: 5,
        };
        let minus = VertexKind::Send {
            node: NodeId(1),
            peer: NodeId(2),
            delta: TupleDelta::minus(tuple()),
            time: 5,
        };
        let other_peer = VertexKind::Send {
            node: NodeId(1),
            peer: NodeId(3),
            delta: TupleDelta::plus(tuple()),
            time: 5,
        };
        assert_ne!(plus.identity(), minus.identity());
        assert_ne!(plus.identity(), other_peer.identity());
    }

    #[test]
    fn host_and_tuple_accessors() {
        let v = VertexKind::Derive {
            node: NodeId(7),
            tuple: tuple(),
            rule: "R1".into(),
            time: 3,
        };
        assert_eq!(v.host(), NodeId(7));
        assert_eq!(v.tuple(), &tuple());
        assert_eq!(v.time(), 3);
        assert_eq!(v.kind_name(), "derive");
    }

    #[test]
    fn display_includes_kind_and_color() {
        let v = Vertex::new(
            VertexKind::Appear {
                node: NodeId(1),
                tuple: tuple(),
                time: 4,
            },
            Color::Black,
        );
        let s = v.to_string();
        assert!(s.contains("APPEAR"));
        assert!(s.contains("black"));
    }

    #[test]
    fn derive_identity_includes_rule() {
        let a = VertexKind::Derive {
            node: NodeId(1),
            tuple: tuple(),
            rule: "R1".into(),
            time: 3,
        };
        let b = VertexKind::Derive {
            node: NodeId(1),
            tuple: tuple(),
            rule: "R2".into(),
            time: 3,
        };
        assert_ne!(a.identity(), b.identity());
    }
}

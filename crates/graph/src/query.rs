//! Graph traversal helpers used by macroqueries.
//!
//! The query processor (§5.1) answers *why* questions by walking the graph
//! backwards from a vertex to its root causes (base-tuple insertions or red
//! vertices), *effect* questions by walking forwards, and supports a scope
//! parameter `k` that bounds the exploration radius.

use crate::graph::ProvenanceGraph;
use crate::vertex::{Color, VertexId, VertexKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The result of a traversal: the visited vertices, their depths, and the
/// edges among them.
#[derive(Clone, Debug)]
pub struct Traversal {
    /// Visited vertices with their distance from the root.
    pub depths: BTreeMap<VertexId, usize>,
    /// Edges among visited vertices, in `(from, to)` provenance direction.
    pub edges: BTreeSet<(VertexId, VertexId)>,
    /// The root the traversal started from.
    pub root: VertexId,
}

impl Traversal {
    /// An empty traversal rooted at `root`.
    fn empty(root: VertexId) -> Traversal {
        Traversal {
            depths: BTreeMap::new(),
            edges: BTreeSet::new(),
            root,
        }
    }
}

impl Traversal {
    /// Vertices visited, in breadth-first order (by depth, then id).
    pub fn vertices(&self) -> Vec<VertexId> {
        let mut v: Vec<(usize, VertexId)> = self.depths.iter().map(|(id, d)| (*d, *id)).collect();
        v.sort();
        v.into_iter().map(|(_, id)| id).collect()
    }

    /// Number of visited vertices.
    pub fn len(&self) -> usize {
        self.depths.len()
    }

    /// Whether only the root was visited.
    pub fn is_empty(&self) -> bool {
        self.depths.len() <= 1
    }
}

/// Direction of a traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Towards causes (follow edges backwards).
    Causes,
    /// Towards effects (follow edges forwards).
    Effects,
}

/// Breadth-first traversal from `root` in the given direction, bounded by
/// `scope` hops (`None` = unbounded).
pub fn traverse(graph: &ProvenanceGraph, root: VertexId, direction: Direction, scope: Option<usize>) -> Traversal {
    let mut out = Traversal::empty(root);
    if !graph.contains(&root) {
        return out;
    }
    let mut queue = VecDeque::new();
    queue.push_back((root, 0usize));
    out.depths.insert(root, 0);
    while let Some((vertex, depth)) = queue.pop_front() {
        if let Some(limit) = scope {
            if depth >= limit {
                continue;
            }
        }
        let next = match direction {
            Direction::Causes => graph.predecessors(&vertex),
            Direction::Effects => graph.successors(&vertex),
        };
        for n in next {
            let edge = match direction {
                Direction::Causes => (n, vertex),
                Direction::Effects => (vertex, n),
            };
            out.edges.insert(edge);
            if let std::collections::btree_map::Entry::Vacant(e) = out.depths.entry(n) {
                e.insert(depth + 1);
                queue.push_back((n, depth + 1));
            }
        }
    }
    out
}

/// The *explanation* (provenance subtree) of a vertex: every transitive cause.
pub fn explain(graph: &ProvenanceGraph, root: VertexId) -> Traversal {
    traverse(graph, root, Direction::Causes, None)
}

/// The forward slice of a vertex: everything derived from it (used for damage
/// assessment, §2.2 "causal queries").
pub fn affected(graph: &ProvenanceGraph, root: VertexId) -> Traversal {
    traverse(graph, root, Direction::Effects, None)
}

/// The leaves of an explanation: vertices with no further causes.  For a
/// legitimate explanation these are base-tuple `insert` / `delete` vertices
/// (§3.2: "The leaves of this subtree consist of base tuple insertions or
/// deletions, which require no further explanation") or `checkpoint`
/// vertices, whose pre-checkpoint provenance was truncated but whose
/// existence at the epoch boundary is vouched for by a verified signed
/// checkpoint (§5.6).  Negative explanations additionally bottom out at
/// `absence` vertices (a base tuple that was never inserted needs no further
/// explanation) and at `missing-precondition` vertices whose deriving rule
/// was filtered by a constraint or policy; an *unverified* missing
/// precondition never stays a black leaf — a refused or unknown would-be
/// sender leaves yellow audit evidence that fails the all-black check.
pub fn root_causes(graph: &ProvenanceGraph, traversal: &Traversal) -> Vec<VertexId> {
    traversal
        .depths
        .keys()
        .filter(|id| graph.predecessors(id).is_empty())
        .copied()
        .collect()
}

/// Whether an explanation is fully legitimate: every vertex black and every
/// leaf a base-tuple event.
pub fn is_legitimate_explanation(graph: &ProvenanceGraph, traversal: &Traversal) -> bool {
    let all_black = traversal
        .depths
        .keys()
        .all(|id| graph.vertex(id).map(|v| v.color == Color::Black).unwrap_or(false));
    if !all_black {
        return false;
    }
    root_causes(graph, traversal).iter().all(|id| {
        matches!(
            graph.vertex(id).map(|v| &v.kind),
            Some(VertexKind::Insert { .. })
                | Some(VertexKind::Delete { .. })
                | Some(VertexKind::Checkpoint { .. })
                | Some(VertexKind::Absence { .. })
                | Some(VertexKind::MissingPrecondition { .. })
        )
    })
}

/// Render a traversal as an indented text tree rooted at `root` (used by the
/// examples and the Figure 4 harness to print provenance trees).
pub fn render_tree(graph: &ProvenanceGraph, traversal: &Traversal, direction: Direction) -> String {
    let mut out = String::new();
    let mut visited = BTreeSet::new();
    render_rec(graph, traversal, traversal.root, direction, 0, &mut visited, &mut out);
    out
}

fn render_rec(
    graph: &ProvenanceGraph,
    traversal: &Traversal,
    vertex: VertexId,
    direction: Direction,
    indent: usize,
    visited: &mut BTreeSet<VertexId>,
    out: &mut String,
) {
    let Some(v) = graph.vertex(&vertex) else { return };
    out.push_str(&"  ".repeat(indent));
    out.push_str(&v.to_string());
    out.push('\n');
    if !visited.insert(vertex) {
        return;
    }
    let next = match direction {
        Direction::Causes => graph.predecessors(&vertex),
        Direction::Effects => graph.successors(&vertex),
    };
    for n in next {
        if traversal.depths.contains_key(&n) {
            render_rec(graph, traversal, n, direction, indent + 1, visited, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex::{Color, Vertex, VertexKind};
    use snp_crypto::keys::NodeId;
    use snp_datalog::{Tuple, Value};

    fn tup(name: &str) -> Tuple {
        Tuple::new(name, NodeId(1), vec![Value::Int(1)])
    }

    /// insert(base) -> appear(base) -> derive(derived) -> appear(derived) -> exist(derived)
    fn chain_graph() -> (ProvenanceGraph, Vec<VertexId>) {
        let mut g = ProvenanceGraph::new();
        let insert = g.upsert(Vertex::new(
            VertexKind::Insert {
                node: NodeId(1),
                tuple: tup("base"),
                time: 1,
            },
            Color::Black,
        ));
        let appear_base = g.upsert(Vertex::new(
            VertexKind::Appear {
                node: NodeId(1),
                tuple: tup("base"),
                time: 1,
            },
            Color::Black,
        ));
        let derive = g.upsert(Vertex::new(
            VertexKind::Derive {
                node: NodeId(1),
                tuple: tup("derived"),
                rule: "R1".into(),
                time: 1,
            },
            Color::Black,
        ));
        let appear_derived = g.upsert(Vertex::new(
            VertexKind::Appear {
                node: NodeId(1),
                tuple: tup("derived"),
                time: 1,
            },
            Color::Black,
        ));
        let exist = g.upsert(Vertex::new(
            VertexKind::Exist {
                node: NodeId(1),
                tuple: tup("derived"),
                from: 1,
                until: None,
            },
            Color::Black,
        ));
        g.add_edge(insert, appear_base);
        g.add_edge(appear_base, derive);
        g.add_edge(derive, appear_derived);
        g.add_edge(appear_derived, exist);
        (g, vec![insert, appear_base, derive, appear_derived, exist])
    }

    #[test]
    fn explain_reaches_base_insert() {
        let (g, ids) = chain_graph();
        let t = explain(&g, ids[4]);
        assert_eq!(t.len(), 5);
        let roots = root_causes(&g, &t);
        assert_eq!(roots, vec![ids[0]]);
        assert!(is_legitimate_explanation(&g, &t));
    }

    #[test]
    fn affected_walks_forward() {
        let (g, ids) = chain_graph();
        let t = affected(&g, ids[0]);
        assert_eq!(t.len(), 5);
        let t_mid = affected(&g, ids[2]);
        assert_eq!(t_mid.len(), 3);
    }

    #[test]
    fn scope_limits_depth() {
        let (g, ids) = chain_graph();
        let t = traverse(&g, ids[4], Direction::Causes, Some(2));
        assert_eq!(t.len(), 3, "root + two hops");
        let t0 = traverse(&g, ids[4], Direction::Causes, Some(0));
        assert!(t0.is_empty());
    }

    #[test]
    fn red_vertex_makes_explanation_illegitimate() {
        let (mut g, ids) = chain_graph();
        g.set_color(ids[1], Color::Red);
        let t = explain(&g, ids[4]);
        assert!(!is_legitimate_explanation(&g, &t));
    }

    #[test]
    fn explanation_without_base_leaf_is_illegitimate() {
        // A derive with no predecessors (dangling provenance) is suspicious.
        let mut g = ProvenanceGraph::new();
        let derive = g.upsert(Vertex::new(
            VertexKind::Derive {
                node: NodeId(1),
                tuple: tup("derived"),
                rule: "R1".into(),
                time: 1,
            },
            Color::Black,
        ));
        let t = explain(&g, derive);
        assert!(!is_legitimate_explanation(&g, &t));
    }

    #[test]
    fn traversal_of_missing_root_is_empty() {
        let (g, _) = chain_graph();
        let bogus = VertexKind::Insert {
            node: NodeId(9),
            tuple: tup("zzz"),
            time: 9,
        }
        .identity();
        let t = explain(&g, bogus);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn render_tree_contains_all_lines() {
        let (g, ids) = chain_graph();
        let t = explain(&g, ids[4]);
        let text = render_tree(&g, &t, Direction::Causes);
        assert!(text.contains("EXIST"));
        assert!(text.contains("DERIVE"));
        assert!(text.contains("INSERT"));
        assert_eq!(text.lines().count(), 5);
    }
}

//! Histories and executions (Appendix A.3).
//!
//! A *history* is the ground truth an omniscient observer would record: a
//! time-ordered sequence of `snd`, `rcv`, `ins` and `del` events across all
//! nodes.  The graph construction algorithm consumes histories; SNooPy later
//! reconstructs per-node histories from tamper-evident logs.

use crate::vertex::Timestamp;
use snp_crypto::keys::NodeId;
use snp_crypto::Digest;
use snp_datalog::{Tuple, TupleDelta};
use std::fmt;

/// The body of a message: either a tuple notification or an acknowledgment of
/// a previously sent message (Appendix A.2).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum MessageBody {
    /// A `+τ` / `-τ` notification.
    Delta(TupleDelta),
    /// An acknowledgment of the message with the given digest.
    Ack {
        /// Digest of the acknowledged message.
        of: Digest,
    },
}

/// A message exchanged between two nodes.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Message {
    /// Sending node (`src(m)`).
    pub from: NodeId,
    /// Destination node (`dst(m)`).
    pub to: NodeId,
    /// The payload.
    pub body: MessageBody,
    /// The sender's local time when the message was transmitted (`txmit(m)`).
    pub sent_at: Timestamp,
    /// Per-sender sequence number; makes retransmissions distinguishable.
    pub seq: u64,
}

impl Message {
    /// Build a tuple-notification message.
    pub fn delta(from: NodeId, to: NodeId, delta: TupleDelta, sent_at: Timestamp, seq: u64) -> Message {
        Message {
            from,
            to,
            body: MessageBody::Delta(delta),
            sent_at,
            seq,
        }
    }

    /// Build an acknowledgment for `original`.
    pub fn ack(original: &Message, sent_at: Timestamp, seq: u64) -> Message {
        Message {
            from: original.to,
            to: original.from,
            body: MessageBody::Ack { of: original.digest() },
            sent_at,
            seq,
        }
    }

    /// Whether the message is an acknowledgment.
    pub fn is_ack(&self) -> bool {
        matches!(self.body, MessageBody::Ack { .. })
    }

    /// The tuple notification, if the message carries one.
    pub fn as_delta(&self) -> Option<&TupleDelta> {
        match &self.body {
            MessageBody::Delta(d) => Some(d),
            MessageBody::Ack { .. } => None,
        }
    }

    /// Stable byte encoding (used for digests and the tamper-evident log).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.from.to_bytes());
        out.extend_from_slice(&self.to.to_bytes());
        out.extend_from_slice(&self.sent_at.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        match &self.body {
            MessageBody::Delta(delta) => {
                out.push(match delta.polarity {
                    snp_datalog::Polarity::Plus => b'+',
                    snp_datalog::Polarity::Minus => b'-',
                });
                out.extend_from_slice(&delta.tuple.encode());
            }
            MessageBody::Ack { of } => {
                out.push(b'a');
                out.extend_from_slice(of.as_bytes());
            }
        }
        out
    }

    /// Content digest of the message.
    pub fn digest(&self) -> Digest {
        snp_crypto::hash(&self.encode())
    }

    /// Approximate wire size of the message body in bytes.
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.body {
            MessageBody::Delta(d) => write!(
                f,
                "{} -> {}: {} (t={}, seq={})",
                self.from, self.to, d, self.sent_at, self.seq
            ),
            MessageBody::Ack { of } => write!(
                f,
                "{} -> {}: ack({}) (t={}, seq={})",
                self.from,
                self.to,
                of.short(),
                self.sent_at,
                self.seq
            ),
        }
    }
}

/// What happened in an event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// The node sent a message.
    Snd(Message),
    /// The node received a message.
    Rcv(Message),
    /// A base tuple was inserted on the node.
    Ins(Tuple),
    /// A base tuple was deleted from the node.
    Del(Tuple),
}

impl EventKind {
    /// Short label for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            EventKind::Snd(_) => "snd",
            EventKind::Rcv(_) => "rcv",
            EventKind::Ins(_) => "ins",
            EventKind::Del(_) => "del",
        }
    }
}

/// One event `e_k = (t_k, i_k, x_k)` of a history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Local time at the node.
    pub time: Timestamp,
    /// The node the event occurred on.
    pub node: NodeId,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Construct an event.
    pub fn new(time: Timestamp, node: NodeId, kind: EventKind) -> Event {
        Event { time, node, kind }
    }
}

/// A history: a sequence of events ordered by time (ties broken by insertion
/// order, which the `Vec` preserves).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct History {
    events: Vec<Event>,
}

impl History {
    /// Create an empty history.
    pub fn new() -> History {
        History { events: Vec::new() }
    }

    /// Create a history from pre-ordered events.
    pub fn from_events(events: Vec<Event>) -> History {
        History { events }
    }

    /// Append an event (must not go backwards in time per node; global order
    /// is kept by stable sort on read).
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// All events in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The projection `h | i`: the subsequence of events on node `i`.
    pub fn project(&self, node: NodeId) -> History {
        History {
            events: self.events.iter().filter(|e| e.node == node).cloned().collect(),
        }
    }

    /// The prefix consisting of the first `n` events.
    pub fn prefix(&self, n: usize) -> History {
        History {
            events: self.events.iter().take(n).cloned().collect(),
        }
    }

    /// Whether `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &History) -> bool {
        self.events.len() <= other.events.len() && other.events[..self.events.len()] == self.events[..]
    }

    /// Append all events of another history (used when composing per-node
    /// histories into a global one); the result is re-sorted by timestamp
    /// with a stable sort so per-node order is preserved.
    pub fn merge(&mut self, other: &History) {
        self.events.extend(other.events.iter().cloned());
        self.events.sort_by_key(|e| e.time);
    }

    /// Nodes that appear in the history.
    pub fn nodes(&self) -> std::collections::BTreeSet<NodeId> {
        self.events.iter().map(|e| e.node).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_datalog::Value;

    fn tup() -> Tuple {
        Tuple::new("x", NodeId(1), vec![Value::Int(1)])
    }

    fn msg(seq: u64) -> Message {
        Message::delta(NodeId(1), NodeId(2), TupleDelta::plus(tup()), 10, seq)
    }

    #[test]
    fn message_digests_are_content_addressed() {
        assert_eq!(msg(1).digest(), msg(1).digest());
        assert_ne!(msg(1).digest(), msg(2).digest());
        let ack = Message::ack(&msg(1), 20, 5);
        assert!(ack.is_ack());
        assert_eq!(ack.from, NodeId(2));
        assert_eq!(ack.to, NodeId(1));
        assert_ne!(ack.digest(), msg(1).digest());
    }

    #[test]
    fn delta_accessor() {
        assert!(msg(1).as_delta().is_some());
        assert!(Message::ack(&msg(1), 20, 5).as_delta().is_none());
    }

    #[test]
    fn history_projection_and_prefix() {
        let mut h = History::new();
        h.push(Event::new(1, NodeId(1), EventKind::Ins(tup())));
        h.push(Event::new(2, NodeId(2), EventKind::Snd(msg(1))));
        h.push(Event::new(3, NodeId(1), EventKind::Del(tup())));
        assert_eq!(h.len(), 3);
        assert_eq!(h.project(NodeId(1)).len(), 2);
        assert_eq!(h.project(NodeId(3)).len(), 0);
        assert!(h.prefix(2).is_prefix_of(&h));
        assert!(!h.is_prefix_of(&h.prefix(2)));
        assert_eq!(h.nodes().len(), 2);
    }

    #[test]
    fn merge_sorts_by_time_stably() {
        let mut a = History::new();
        a.push(Event::new(5, NodeId(1), EventKind::Ins(tup())));
        let mut b = History::new();
        b.push(Event::new(3, NodeId(2), EventKind::Ins(tup())));
        b.push(Event::new(5, NodeId(2), EventKind::Del(tup())));
        a.merge(&b);
        assert_eq!(a.events()[0].time, 3);
        assert_eq!(a.events()[1].time, 5);
        assert_eq!(
            a.events()[1].node,
            NodeId(1),
            "stable sort keeps original order among equal timestamps"
        );
    }

    #[test]
    fn event_kind_names() {
        assert_eq!(EventKind::Ins(tup()).kind_name(), "ins");
        assert_eq!(EventKind::Snd(msg(1)).kind_name(), "snd");
    }
}

//! The provenance graph and the operations from Appendix B.2.

use crate::vertex::{Color, Timestamp, Vertex, VertexId, VertexKind};
use snp_crypto::keys::NodeId;
use snp_datalog::{Polarity, Tuple};
use std::collections::{BTreeMap, BTreeSet};

/// Table 1 of the paper: which edge types may appear in the graph.
///
/// Returns `true` when an edge from a vertex of kind `from` to a vertex of
/// kind `to` is permitted.
pub fn edge_allowed(from: &str, to: &str) -> bool {
    matches!(
        (from, to),
        ("insert", "appear")
            | ("delete", "disappear")
            | ("appear", "exist")
            | ("appear", "send")
            | ("appear", "derive")
            | ("disappear", "exist")
            | ("disappear", "send")
            | ("disappear", "underive")
            | ("exist", "derive")
            | ("exist", "underive")
            | ("derive", "appear")
            | ("underive", "disappear")
            | ("send", "receive")
            | ("receive", "believe-appear")
            | ("receive", "believe-disappear")
            | ("believe-appear", "believe")
            | ("believe-appear", "derive")
            | ("believe-disappear", "believe")
            | ("believe-disappear", "underive")
            | ("believe", "derive")
            | ("believe", "underive")
            // §3.4 constraint extension: a causally-related replacement links
            // the appearance of the new tuple to the disappearance of the old.
            | ("disappear", "appear")
            | ("appear", "disappear")
            // §5.6 checkpoint-anchored replay: a verified checkpoint vouches
            // for pre-checkpoint state, standing in for its truncated
            // appearance provenance.
            | ("checkpoint", "exist")
            // Negative provenance: the dual edges of the `why_absent` /
            // `why_vanished` query class.  An absence is explained either by
            // the disappearance that ended the tuple's last existence
            // interval, or by the missing preconditions of every rule that
            // could have derived it; a missing precondition is in turn
            // explained by the precondition's own absence (possibly on the
            // would-be sender), or by the sender's `send` vertex when it
            // logged a send it never delivered (lying by omission).
            | ("disappear", "absence")
            | ("believe-disappear", "absence")
            | ("delete", "absence")
            | ("missing-precondition", "absence")
            | ("absence", "missing-precondition")
            | ("send", "missing-precondition")
    )
}

/// The provenance graph `G = (V, E)`.
#[derive(Clone, Debug, Default)]
pub struct ProvenanceGraph {
    vertices: BTreeMap<VertexId, Vertex>,
    /// Forward edges `(v1, v2)`: v1 is part of the provenance of v2.
    edges: BTreeSet<(VertexId, VertexId)>,
    /// Reverse adjacency for successor queries.
    reverse: BTreeSet<(VertexId, VertexId)>,
}

impl ProvenanceGraph {
    /// Create an empty graph.
    pub fn new() -> ProvenanceGraph {
        ProvenanceGraph::default()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Insert (or merge) a vertex.  If a vertex with the same identity is
    /// already present, its color is upgraded to the dominant one and an
    /// open interval may be narrowed (Appendix B.2's union semantics);
    /// otherwise the vertex is added as-is.  Returns its id.
    pub fn upsert(&mut self, vertex: Vertex) -> VertexId {
        let id = vertex.id();
        match self.vertices.get_mut(&id) {
            Some(existing) => {
                existing.color = existing.color.dominant(vertex.color);
                // Interval intersection: a closed interval wins over an open one,
                // and of two closed ones the earlier end wins.
                let new_until = match (&existing.kind, &vertex.kind) {
                    (
                        VertexKind::Exist { until: a, .. } | VertexKind::Believe { until: a, .. },
                        VertexKind::Exist { until: b, .. } | VertexKind::Believe { until: b, .. },
                    ) => match (a, b) {
                        (Some(x), Some(y)) => Some(Some(*x.min(y))),
                        (Some(x), None) => Some(Some(*x)),
                        (None, Some(y)) => Some(Some(*y)),
                        (None, None) => Some(None),
                    },
                    _ => None,
                };
                if let Some(until) = new_until {
                    match &mut existing.kind {
                        VertexKind::Exist { until: u, .. } | VertexKind::Believe { until: u, .. } => *u = until,
                        _ => {}
                    }
                }
            }
            None => {
                self.vertices.insert(id, vertex);
            }
        }
        id
    }

    /// Set (upgrade) the color of a vertex.  Downgrades are ignored, matching
    /// the monotonic color transitions proven in Theorem 1.
    pub fn set_color(&mut self, id: VertexId, color: Color) {
        if let Some(vertex) = self.vertices.get_mut(&id) {
            vertex.color = vertex.color.dominant(color);
        }
    }

    /// Force a color even if it is a downgrade.  Only used when a repaired
    /// node is re-audited (§4.4 allows recoloring a repaired node black).
    pub fn force_color(&mut self, id: VertexId, color: Color) {
        if let Some(vertex) = self.vertices.get_mut(&id) {
            vertex.color = color;
        }
    }

    /// Close the interval of an `exist` / `believe` vertex.
    pub fn close_interval(&mut self, id: VertexId, end: Timestamp) {
        if let Some(vertex) = self.vertices.get_mut(&id) {
            match &mut vertex.kind {
                VertexKind::Exist { until, .. } | VertexKind::Believe { until, .. } if until.is_none() => {
                    *until = Some(end);
                }
                _ => {}
            }
        }
    }

    /// Add a directed edge.  Edges whose endpoint kinds violate Table 1 are
    /// rejected with an error in debug builds and ignored in release builds.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId) {
        if let (Some(vf), Some(vt)) = (self.vertices.get(&from), self.vertices.get(&to)) {
            debug_assert!(
                edge_allowed(vf.kind.kind_name(), vt.kind.kind_name()),
                "edge {} -> {} violates Table 1",
                vf.kind.kind_name(),
                vt.kind.kind_name()
            );
        }
        if from == to {
            return;
        }
        self.edges.insert((from, to));
        self.reverse.insert((to, from));
    }

    /// Fetch a vertex by id.
    pub fn vertex(&self, id: &VertexId) -> Option<&Vertex> {
        self.vertices.get(id)
    }

    /// Whether the graph contains a vertex with this identity.
    pub fn contains(&self, id: &VertexId) -> bool {
        self.vertices.contains_key(id)
    }

    /// Whether the graph contains the edge `(from, to)`.
    pub fn has_edge(&self, from: &VertexId, to: &VertexId) -> bool {
        self.edges.contains(&(*from, *to))
    }

    /// Iterate over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = (&VertexId, &Vertex)> {
        self.vertices.iter()
    }

    /// Iterate over all edges.
    pub fn edges(&self) -> impl Iterator<Item = &(VertexId, VertexId)> {
        self.edges.iter()
    }

    /// Direct predecessors of a vertex (its immediate provenance).
    pub fn predecessors(&self, id: &VertexId) -> Vec<VertexId> {
        self.reverse
            .range((*id, VertexId(snp_crypto::Digest::ZERO))..)
            .take_while(|(to, _)| to == id)
            .map(|(_, from)| *from)
            .collect()
    }

    /// Direct successors of a vertex (what it contributed to).
    pub fn successors(&self, id: &VertexId) -> Vec<VertexId> {
        self.edges
            .range((*id, VertexId(snp_crypto::Digest::ZERO))..)
            .take_while(|(from, _)| from == id)
            .map(|(_, to)| *to)
            .collect()
    }

    /// All vertices hosted on `node`.
    pub fn vertices_on(&self, node: NodeId) -> impl Iterator<Item = (&VertexId, &Vertex)> {
        self.vertices.iter().filter(move |(_, v)| v.host() == node)
    }

    /// All vertices of a given color.
    pub fn vertices_with_color(&self, color: Color) -> Vec<VertexId> {
        self.vertices
            .iter()
            .filter(|(_, v)| v.color == color)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Nodes that host at least one red vertex (Theorem 3: exactly the faulty
    /// nodes).
    pub fn faulty_nodes(&self) -> BTreeSet<NodeId> {
        self.vertices
            .values()
            .filter(|v| v.color == Color::Red)
            .map(|v| v.host())
            .collect()
    }

    /// Nodes that host at least one red *or yellow* vertex — the set a
    /// forensic investigator should examine (§4.3 completeness).
    pub fn suspect_nodes(&self) -> BTreeSet<NodeId> {
        self.vertices
            .values()
            .filter(|v| v.color != Color::Black)
            .map(|v| v.host())
            .collect()
    }

    // ----- lookups used by the graph construction algorithm ----------------

    fn find_kind(&self, f: impl Fn(&VertexKind) -> bool) -> Option<VertexId> {
        self.vertices.iter().find(|(_, v)| f(&v.kind)).map(|(id, _)| *id)
    }

    /// The open `exist` vertex for a tuple on a node, if any.
    pub fn open_exist(&self, node: NodeId, tuple: &Tuple) -> Option<VertexId> {
        self.find_kind(
            |k| matches!(k, VertexKind::Exist { node: n, tuple: t, until: None, .. } if *n == node && t == tuple),
        )
    }

    /// The open `believe` vertex for a tuple on a node (from any peer).
    pub fn open_believe(&self, node: NodeId, tuple: &Tuple) -> Option<VertexId> {
        self.find_kind(
            |k| matches!(k, VertexKind::Believe { node: n, tuple: t, until: None, .. } if *n == node && t == tuple),
        )
    }

    /// The `appear` vertex for a tuple on a node at exactly `time`.
    pub fn appear_at(&self, node: NodeId, tuple: &Tuple, time: Timestamp) -> Option<VertexId> {
        self.find_kind(|k| {
            matches!(k, VertexKind::Appear { node: n, tuple: t, time: tt } if *n == node && t == tuple && *tt == time)
        })
    }

    /// The `disappear` vertex for a tuple on a node at exactly `time`.
    pub fn disappear_at(&self, node: NodeId, tuple: &Tuple, time: Timestamp) -> Option<VertexId> {
        self.find_kind(|k| {
            matches!(k, VertexKind::Disappear { node: n, tuple: t, time: tt } if *n == node && t == tuple && *tt == time)
        })
    }

    /// The `believe-appear` vertex for a tuple on a node at exactly `time`.
    pub fn believe_appear_at(&self, node: NodeId, tuple: &Tuple, time: Timestamp) -> Option<VertexId> {
        self.find_kind(|k| {
            matches!(k, VertexKind::BelieveAppear { node: n, tuple: t, time: tt, .. } if *n == node && t == tuple && *tt == time)
        })
    }

    /// The `believe-disappear` vertex for a tuple on a node at exactly `time`.
    pub fn believe_disappear_at(&self, node: NodeId, tuple: &Tuple, time: Timestamp) -> Option<VertexId> {
        self.find_kind(|k| {
            matches!(k, VertexKind::BelieveDisappear { node: n, tuple: t, time: tt, .. } if *n == node && t == tuple && *tt == time)
        })
    }

    /// The `exist` vertex (open or closed) covering a tuple at a given time.
    pub fn exist_covering(&self, node: NodeId, tuple: &Tuple, time: Timestamp) -> Option<VertexId> {
        self.find_kind(|k| match k {
            VertexKind::Exist {
                node: n,
                tuple: t,
                from,
                until,
            } if *n == node && t == tuple => *from <= time && until.map(|u| time <= u).unwrap_or(true),
            _ => false,
        })
    }

    /// Find a `send` vertex for a specific notification (any timestamp).
    pub fn find_send(
        &self,
        node: NodeId,
        peer: NodeId,
        tuple: &Tuple,
        polarity: Polarity,
        time: Option<Timestamp>,
    ) -> Option<VertexId> {
        self.find_kind(|k| match k {
            VertexKind::Send {
                node: n,
                peer: p,
                delta,
                time: t,
            } => {
                *n == node
                    && *p == peer
                    && delta.tuple == *tuple
                    && delta.polarity == polarity
                    && time.map(|x| x == *t).unwrap_or(true)
            }
            _ => false,
        })
    }

    /// Find a `receive` vertex for a specific notification (any timestamp).
    pub fn find_receive(&self, node: NodeId, peer: NodeId, tuple: &Tuple, polarity: Polarity) -> Option<VertexId> {
        self.find_kind(|k| match k {
            VertexKind::Receive {
                node: n,
                peer: p,
                delta,
                ..
            } => *n == node && *p == peer && delta.tuple == *tuple && delta.polarity == polarity,
            _ => false,
        })
    }

    // ----- pattern lookups used by negative provenance ----------------------

    /// Whether an interval `[from, until]` covers the instant of interest:
    /// `at = None` asks about "now", which only open intervals cover.
    fn interval_covers(from: Timestamp, until: Option<Timestamp>, at: Option<Timestamp>) -> bool {
        match at {
            None => until.is_none(),
            Some(t) => from <= t && until.map(|u| t <= u).unwrap_or(true),
        }
    }

    /// An `exist` or `believe` vertex on `node` for a tuple covered by
    /// `pattern` whose interval covers `at` (`None` = now).  This is the
    /// querier's presence test for `why_absent`.
    pub fn existence_matching(&self, node: NodeId, pattern: &Tuple, at: Option<Timestamp>) -> Option<VertexId> {
        self.find_kind(|k| match k {
            VertexKind::Exist {
                node: n,
                tuple,
                from,
                until,
            }
            | VertexKind::Believe {
                node: n,
                tuple,
                from,
                until,
                ..
            } => *n == node && pattern.covers(tuple) && Self::interval_covers(*from, *until, at),
            _ => false,
        })
    }

    /// The latest `disappear` / `believe-disappear` vertex on `node` for a
    /// tuple covered by `pattern` at or before `before`, together with its
    /// timestamp.  This is how `why_absent` bottoms out in `why_disappeared`
    /// when the tuple once existed.
    pub fn latest_disappearance_matching(
        &self,
        node: NodeId,
        pattern: &Tuple,
        before: Timestamp,
    ) -> Option<(VertexId, Timestamp)> {
        self.vertices
            .iter()
            .filter_map(|(id, v)| match &v.kind {
                VertexKind::Disappear { node: n, tuple, time }
                | VertexKind::BelieveDisappear {
                    node: n, tuple, time, ..
                } if *n == node && pattern.covers(tuple) && *time <= before => Some((*id, *time)),
                _ => None,
            })
            .max_by_key(|(id, time)| (*time, *id))
    }

    /// Whether a tuple covered by `pattern` (re)appeared on `node` strictly
    /// after `after` and at or before `until`.  Used to check that a found
    /// disappearance is really the *last* word before the instant of
    /// interest.
    pub fn appearance_matching_in(&self, node: NodeId, pattern: &Tuple, after: Timestamp, until: Timestamp) -> bool {
        self.vertices.values().any(|v| match &v.kind {
            VertexKind::Appear { node: n, tuple, time }
            | VertexKind::BelieveAppear {
                node: n, tuple, time, ..
            } => *n == node && pattern.covers(tuple) && *time > after && *time <= until,
            _ => false,
        })
    }

    /// The latest `send` vertex from `node` to `peer` whose notification
    /// tuple is covered by `pattern`.  Negative provenance uses this to
    /// check whether a would-be sender logged a send that the receiver never
    /// saw — the lying-by-omission case.
    pub fn find_send_matching(
        &self,
        node: NodeId,
        peer: NodeId,
        pattern: &Tuple,
        polarity: Polarity,
    ) -> Option<VertexId> {
        self.vertices
            .iter()
            .filter_map(|(id, v)| match &v.kind {
                VertexKind::Send {
                    node: n,
                    peer: p,
                    delta,
                    time,
                } if *n == node && *p == peer && delta.polarity == polarity && pattern.covers(&delta.tuple) => {
                    Some((*time, *id))
                }
                _ => None,
            })
            .max()
            .map(|(_, id)| id)
    }

    /// The tuples visible on `node` at the instant of interest, reconstructed
    /// from its existence and belief intervals (`at = None` = now).  Sorted
    /// and deduplicated, so downstream absence tracing is deterministic.
    pub fn present_tuples_at(&self, node: NodeId, at: Option<Timestamp>) -> Vec<Tuple> {
        let set: BTreeSet<Tuple> = self
            .vertices
            .values()
            .filter_map(|v| match &v.kind {
                VertexKind::Exist {
                    node: n,
                    tuple,
                    from,
                    until,
                }
                | VertexKind::Believe {
                    node: n,
                    tuple,
                    from,
                    until,
                    ..
                } if *n == node && Self::interval_covers(*from, *until, at) => Some(tuple.clone()),
                _ => None,
            })
            .collect();
        set.into_iter().collect()
    }

    /// The latest timestamp mentioned anywhere in the graph (vertex times and
    /// closed interval ends).  Negative queries about "now" stamp their
    /// synthesized vertices with this horizon, which is a deterministic
    /// function of the verified evidence.
    pub fn horizon(&self) -> Timestamp {
        self.vertices
            .values()
            .map(|v| match &v.kind {
                VertexKind::Exist { from, until, .. } | VertexKind::Believe { from, until, .. } => {
                    until.unwrap_or(*from)
                }
                other => other.time(),
            })
            .max()
            .unwrap_or(0)
    }

    // ----- Appendix B.2 graph operations ------------------------------------

    /// Graph union `∪*`: vertices are merged by identity (dominant color,
    /// intersected intervals), edges are unioned.
    pub fn union(&self, other: &ProvenanceGraph) -> ProvenanceGraph {
        let mut out = self.clone();
        out.union_in_place(other);
        out
    }

    /// In-place graph union `∪*` — the same semantics as
    /// [`ProvenanceGraph::union`] without re-cloning the accumulated graph on
    /// every merge step (the macroquery processor folds one subgraph per
    /// audited node into its approximation `Gν`).
    ///
    /// Union is commutative and associative: vertex merge takes the dominant
    /// color (a max) and intersects intervals (a min), and edge union is set
    /// union, so the merged graph is independent of the order subgraphs
    /// arrive in.
    pub fn union_in_place(&mut self, other: &ProvenanceGraph) {
        for (_, vertex) in other.vertices() {
            self.upsert(vertex.clone());
        }
        for (from, to) in other.edges() {
            self.edges.insert((*from, *to));
            self.reverse.insert((*to, *from));
        }
    }

    /// Deterministic merge of per-node partial graphs: the parts are merged
    /// in ascending node-id order, no matter what order the audit workers
    /// that produced them completed in.  Because the graph stores vertices
    /// and edges in ordered maps and [`ProvenanceGraph::union_in_place`] is
    /// commutative, the result — including its vertex iteration order — is a
    /// pure function of the part *set*; the explicit sort makes that
    /// independence obvious and keeps any future non-commutative merge step
    /// honest.
    pub fn merge_partials<'a>(parts: impl IntoIterator<Item = (NodeId, &'a ProvenanceGraph)>) -> ProvenanceGraph {
        let mut parts: Vec<(NodeId, &ProvenanceGraph)> = parts.into_iter().collect();
        parts.sort_by_key(|(node, _)| *node);
        let mut out = ProvenanceGraph::new();
        for (_, part) in parts {
            out.union_in_place(part);
        }
        out
    }

    /// Projection `G | i`: all vertices hosted on `i`, plus any `send` /
    /// `receive` vertices on other nodes that are connected to them by an
    /// edge (those are colored yellow in the projection).
    pub fn project(&self, node: NodeId) -> ProvenanceGraph {
        let mut out = ProvenanceGraph::new();
        let local: BTreeSet<VertexId> = self
            .vertices
            .iter()
            .filter(|(_, v)| v.host() == node)
            .map(|(id, _)| *id)
            .collect();
        for id in &local {
            out.vertices.insert(*id, self.vertices[id].clone());
        }
        for (from, to) in &self.edges {
            let from_local = local.contains(from);
            let to_local = local.contains(to);
            if !from_local && !to_local {
                continue;
            }
            for (endpoint, is_local) in [(from, from_local), (to, to_local)] {
                if !is_local {
                    let vertex = &self.vertices[endpoint];
                    if matches!(vertex.kind, VertexKind::Send { .. } | VertexKind::Receive { .. }) {
                        out.vertices
                            .entry(*endpoint)
                            .or_insert_with(|| Vertex::new(vertex.kind.clone(), Color::Yellow));
                    }
                }
            }
            if out.vertices.contains_key(from) && out.vertices.contains_key(to) {
                out.edges.insert((*from, *to));
                out.reverse.insert((*to, *from));
            }
        }
        out
    }

    /// Subgraph relation `⊆*`: every vertex of `self` appears in `other`
    /// (with a color at least as dominant and a compatible interval) and every
    /// edge of `self` appears in `other`.
    pub fn is_subgraph_of(&self, other: &ProvenanceGraph) -> bool {
        for (id, vertex) in &self.vertices {
            match other.vertices.get(id) {
                None => return false,
                Some(theirs) => {
                    if theirs.color.dominant(vertex.color) != theirs.color {
                        return false;
                    }
                }
            }
        }
        self.edges.iter().all(|e| other.edges.contains(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_datalog::Value;

    fn tup(n: u64) -> Tuple {
        Tuple::new("t", NodeId(n), vec![Value::Int(n as i64)])
    }

    fn appear(n: u64, time: Timestamp) -> Vertex {
        Vertex::new(
            VertexKind::Appear {
                node: NodeId(n),
                tuple: tup(n),
                time,
            },
            Color::Black,
        )
    }

    fn exist_open(n: u64, from: Timestamp) -> Vertex {
        Vertex::new(
            VertexKind::Exist {
                node: NodeId(n),
                tuple: tup(n),
                from,
                until: None,
            },
            Color::Black,
        )
    }

    #[test]
    fn upsert_merges_by_identity() {
        let mut g = ProvenanceGraph::new();
        let id1 = g.upsert(appear(1, 5));
        let id2 = g.upsert(appear(1, 5));
        assert_eq!(id1, id2);
        assert_eq!(g.vertex_count(), 1);
        let id3 = g.upsert(appear(1, 6));
        assert_ne!(id1, id3);
        assert_eq!(g.vertex_count(), 2);
    }

    #[test]
    fn color_upgrades_but_never_downgrades() {
        let mut g = ProvenanceGraph::new();
        let mut v = appear(1, 5);
        v.color = Color::Yellow;
        let id = g.upsert(v);
        g.set_color(id, Color::Black);
        assert_eq!(g.vertex(&id).unwrap().color, Color::Black);
        g.set_color(id, Color::Yellow);
        assert_eq!(g.vertex(&id).unwrap().color, Color::Black);
        g.set_color(id, Color::Red);
        assert_eq!(g.vertex(&id).unwrap().color, Color::Red);
        g.set_color(id, Color::Black);
        assert_eq!(g.vertex(&id).unwrap().color, Color::Red);
        g.force_color(id, Color::Black);
        assert_eq!(g.vertex(&id).unwrap().color, Color::Black);
    }

    #[test]
    fn close_interval_only_once() {
        let mut g = ProvenanceGraph::new();
        let id = g.upsert(exist_open(1, 10));
        g.close_interval(id, 20);
        g.close_interval(id, 30);
        match &g.vertex(&id).unwrap().kind {
            VertexKind::Exist { until, .. } => assert_eq!(*until, Some(20)),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn edges_and_adjacency() {
        let mut g = ProvenanceGraph::new();
        let a = g.upsert(appear(1, 5));
        let e = g.upsert(exist_open(1, 5));
        g.add_edge(a, e);
        assert!(g.has_edge(&a, &e));
        assert_eq!(g.successors(&a), vec![e]);
        assert_eq!(g.predecessors(&e), vec![a]);
        assert!(g.predecessors(&a).is_empty());
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn union_keeps_dominant_color_and_intersects_intervals() {
        let mut g1 = ProvenanceGraph::new();
        let mut v = exist_open(1, 10);
        v.color = Color::Yellow;
        let id = g1.upsert(v);

        let mut g2 = ProvenanceGraph::new();
        let mut closed = exist_open(1, 10);
        closed.color = Color::Red;
        if let VertexKind::Exist { until, .. } = &mut closed.kind {
            *until = Some(42);
        }
        g2.upsert(closed);

        let merged = g1.union(&g2);
        let vertex = merged.vertex(&id).unwrap();
        assert_eq!(vertex.color, Color::Red);
        match &vertex.kind {
            VertexKind::Exist { until, .. } => assert_eq!(*until, Some(42)),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn merge_partials_is_independent_of_part_order() {
        let mut g1 = ProvenanceGraph::new();
        let a = g1.upsert(appear(1, 1));
        let shared = g1.upsert(exist_open(1, 1));
        g1.add_edge(a, shared);
        let mut g2 = ProvenanceGraph::new();
        let mut dominant = exist_open(1, 1);
        dominant.color = Color::Red;
        g2.upsert(dominant);
        g2.upsert(appear(2, 2));
        let mut g3 = ProvenanceGraph::new();
        g3.upsert(appear(3, 3));

        let forward = ProvenanceGraph::merge_partials([(NodeId(1), &g1), (NodeId(2), &g2), (NodeId(3), &g3)]);
        let shuffled = ProvenanceGraph::merge_partials([(NodeId(3), &g3), (NodeId(1), &g1), (NodeId(2), &g2)]);
        assert_eq!(forward.vertex_count(), shuffled.vertex_count());
        assert_eq!(forward.edge_count(), shuffled.edge_count());
        assert!(forward.is_subgraph_of(&shuffled) && shuffled.is_subgraph_of(&forward));
        let order_a: Vec<VertexId> = forward.vertices().map(|(id, _)| *id).collect();
        let order_b: Vec<VertexId> = shuffled.vertices().map(|(id, _)| *id).collect();
        assert_eq!(order_a, order_b, "vertex iteration order must be stable");
        assert_eq!(forward.vertex(&shared).unwrap().color, Color::Red);
    }

    #[test]
    fn union_is_superset_of_both() {
        let mut g1 = ProvenanceGraph::new();
        g1.upsert(appear(1, 1));
        let mut g2 = ProvenanceGraph::new();
        g2.upsert(appear(2, 2));
        let merged = g1.union(&g2);
        assert!(g1.is_subgraph_of(&merged));
        assert!(g2.is_subgraph_of(&merged));
        assert!(!merged.is_subgraph_of(&g1));
    }

    #[test]
    fn projection_keeps_local_vertices_and_boundary_messages() {
        let mut g = ProvenanceGraph::new();
        let send = g.upsert(Vertex::new(
            VertexKind::Send {
                node: NodeId(1),
                peer: NodeId(2),
                delta: snp_datalog::TupleDelta::plus(tup(1)),
                time: 3,
            },
            Color::Black,
        ));
        let recv = g.upsert(Vertex::new(
            VertexKind::Receive {
                node: NodeId(2),
                peer: NodeId(1),
                delta: snp_datalog::TupleDelta::plus(tup(1)),
                time: 4,
            },
            Color::Black,
        ));
        g.add_edge(send, recv);
        let appear2 = g.upsert(appear(2, 4));
        let _ = appear2;

        let proj = g.project(NodeId(2));
        assert!(proj.contains(&recv));
        assert!(proj.contains(&send), "boundary send vertex must be kept");
        assert_eq!(
            proj.vertex(&send).unwrap().color,
            Color::Yellow,
            "remote boundary vertex is yellow"
        );
        assert!(proj.contains(&appear2));

        let proj1 = g.project(NodeId(1));
        assert!(proj1.contains(&send));
        assert!(proj1.contains(&recv));
        assert!(!proj1.contains(&appear2));
    }

    #[test]
    fn faulty_and_suspect_nodes() {
        let mut g = ProvenanceGraph::new();
        let a = g.upsert(appear(1, 1));
        let mut yellow = appear(2, 2);
        yellow.color = Color::Yellow;
        g.upsert(yellow);
        g.set_color(a, Color::Red);
        assert_eq!(g.faulty_nodes(), BTreeSet::from([NodeId(1)]));
        assert_eq!(g.suspect_nodes(), BTreeSet::from([NodeId(1), NodeId(2)]));
    }

    #[test]
    fn lookup_helpers() {
        let mut g = ProvenanceGraph::new();
        let a = g.upsert(appear(1, 5));
        let e = g.upsert(exist_open(1, 5));
        assert_eq!(g.appear_at(NodeId(1), &tup(1), 5), Some(a));
        assert_eq!(g.appear_at(NodeId(1), &tup(1), 6), None);
        assert_eq!(g.open_exist(NodeId(1), &tup(1)), Some(e));
        assert_eq!(g.exist_covering(NodeId(1), &tup(1), 100), Some(e));
        g.close_interval(e, 50);
        assert_eq!(g.open_exist(NodeId(1), &tup(1)), None);
        assert_eq!(g.exist_covering(NodeId(1), &tup(1), 100), None);
        assert_eq!(g.exist_covering(NodeId(1), &tup(1), 30), Some(e));
    }

    #[test]
    fn table1_edge_rules() {
        assert!(edge_allowed("insert", "appear"));
        assert!(edge_allowed("send", "receive"));
        assert!(edge_allowed("believe", "derive"));
        assert!(!edge_allowed("insert", "exist"));
        assert!(!edge_allowed("receive", "derive"));
        assert!(!edge_allowed("exist", "appear"));
    }
}

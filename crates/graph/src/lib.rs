//! # snp-graph — the provenance graph model and construction algorithm
//!
//! This crate implements Section 3 and Appendix B of the SNP paper:
//!
//! * [`vertex`] — the twelve vertex types (`insert`, `delete`, `appear`,
//!   `disappear`, `exist`, `derive`, `underive`, `send`, `receive`,
//!   `believe-appear`, `believe-disappear`, `believe`), the three colors
//!   (black / red / yellow) with their dominance order, and `host(v)`.
//! * [`graph`] — the provenance graph with the operations used in the
//!   appendix: union `∪*`, projection `G | i`, the subgraph relation `⊆*`,
//!   and the edge-type compatibility table (Table 1).
//! * [`history`] — histories and executions (Appendix A.3): sequences of
//!   `snd` / `rcv` / `ins` / `del` events, plus the message model.
//! * [`gca`] — the Graph Construction Algorithm (Appendix B, Figures 10/11):
//!   replays a history through per-node deterministic state machines and
//!   produces the colored provenance graph; red vertices appear exactly on
//!   nodes that misbehaved (Theorem 3).
//! * [`query`] — traversal helpers: the provenance subtree rooted at a vertex
//!   (the "why" explanation), forward slices (the "effects"), and scope-`k`
//!   neighborhoods used by macroqueries.

#![forbid(unsafe_code)]
// Unit tests may unwrap: a panic is the assertion.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]
#![warn(missing_docs)]

pub mod gca;
pub mod graph;
pub mod history;
pub mod query;
pub mod vertex;

pub use gca::GraphBuilder;
pub use graph::ProvenanceGraph;
pub use history::{Event, EventKind, History, Message, MessageBody};
pub use snp_crypto::keys::NodeId;
pub use vertex::{Color, Timestamp, Vertex, VertexId, VertexKind};

//! The Graph Construction Algorithm (GCA) — Appendix B, Figures 10 and 11.
//!
//! The GCA consumes a [`History`] and per-node deterministic state machines
//! `A_i`, and produces the colored provenance graph `G(h)`:
//!
//! * `ins` / `del` events produce `insert` / `delete` vertices and the
//!   corresponding `appear` / `disappear` / `exist` updates, and are fed to
//!   the node's state machine.
//! * The machine's `der` / `und` outputs produce `derive` / `underive`
//!   vertices wired to the vertices of their body tuples, and `appear` /
//!   `disappear` updates for the head.
//! * The machine's `snd` outputs are held in the `pending` set until the
//!   matching `snd` event is found in the history; a missing send, an extra
//!   send, a missing acknowledgment, or a stale unacknowledged send colors
//!   the corresponding vertex **red** — these are exactly the misbehaviors of
//!   Lemma 3.
//! * `rcv` events produce `receive` + `believe-*` vertices; acknowledgments
//!   turn the associated `send` / `receive` vertices **black**.
//!
//! Vertices whose fate is not yet known stay **yellow**.

use crate::graph::ProvenanceGraph;
use crate::history::{Event, EventKind, History, Message, MessageBody};
use crate::vertex::{Color, Timestamp, Vertex, VertexId, VertexKind};
use snp_crypto::keys::NodeId;
use snp_crypto::Digest;
use snp_datalog::{EvalMetrics, Polarity, SmInput, SmOutput, StateMachine, Tuple, TupleDelta};
use std::collections::BTreeMap;

/// An entry of the `pending` set: a send the machine produced that has not
/// yet been matched by a `snd` event in the history.
#[derive(Clone, Debug)]
struct PendingSend {
    node: NodeId,
    to: NodeId,
    delta: TupleDelta,
    vertex: VertexId,
}

/// An entry of the `ackpend` set: a `receive` vertex whose acknowledgment has
/// not yet been sent by the receiving node.
#[derive(Clone, Debug)]
struct AckPending {
    node: NodeId,
    original_digest: Digest,
    vertex: VertexId,
}

/// An entry of the `unacked` set: a `send` vertex for which no acknowledgment
/// has been received yet.
#[derive(Clone, Debug)]
struct Unacked {
    node: NodeId,
    vertex: VertexId,
    sent_at: Timestamp,
}

/// The graph construction algorithm.
pub struct GraphBuilder {
    graph: ProvenanceGraph,
    machines: BTreeMap<NodeId, Box<dyn StateMachine>>,
    /// `Tprop`: sends older than `2·Tprop` without an acknowledgment are
    /// flagged red (§5.4).
    t_prop: Timestamp,
    pending: Vec<PendingSend>,
    ackpend: Vec<AckPending>,
    unacked: Vec<Unacked>,
    nopreds: Vec<VertexId>,
    /// Messages seen so far (by digest), used to resolve acknowledgments.
    seen_messages: BTreeMap<Digest, Message>,
    /// Whether the history is *quiescent* (Appendix C.2): it is complete, so a
    /// send the machine produced that never appears as a `snd` event is
    /// misbehavior even if no later event follows.  Replay of retrieved log
    /// segments sets this; incremental construction over a live execution
    /// must not (it would break monotonicity for prefixes).
    quiescent: bool,
}

// Manual impl: the replay machines are trait objects without `Debug`; the
// bookkeeping around them is what matters when inspecting a builder.
impl std::fmt::Debug for GraphBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphBuilder")
            .field("graph", &self.graph)
            .field("machines", &self.machines.keys().collect::<Vec<_>>())
            .field("t_prop", &self.t_prop)
            .field("pending", &self.pending)
            .field("ackpend", &self.ackpend)
            .field("unacked", &self.unacked)
            .field("nopreds", &self.nopreds)
            .field("quiescent", &self.quiescent)
            .finish_non_exhaustive()
    }
}

impl GraphBuilder {
    /// Create a builder.  `machine_factory` must return the *initial-state*
    /// machine for a node; `t_prop` is the propagation bound in the same
    /// (microsecond) unit as event timestamps.
    pub fn new(t_prop: Timestamp) -> GraphBuilder {
        GraphBuilder {
            graph: ProvenanceGraph::new(),
            machines: BTreeMap::new(),
            t_prop,
            pending: Vec::new(),
            ackpend: Vec::new(),
            unacked: Vec::new(),
            nopreds: Vec::new(),
            seen_messages: BTreeMap::new(),
            quiescent: false,
        }
    }

    /// Register the state machine for a node (fresh, initial state).
    pub fn register_machine(&mut self, node: NodeId, machine: Box<dyn StateMachine>) {
        self.machines.insert(node, machine);
    }

    /// Declare the history quiescent: any send the machine produces that never
    /// shows up as a `snd` event is flagged red when construction finishes.
    pub fn set_quiescent(&mut self, quiescent: bool) {
        self.quiescent = quiescent;
    }

    /// Seed the graph with the tuple state recorded by a verified epoch
    /// checkpoint sealed at `sealed_at` (§5.6): each `(tuple, appeared_at)`
    /// gets a black `checkpoint` leaf feeding an open `exist` interval, so
    /// that suffix replay can hang derivations and sends off pre-checkpoint
    /// state without reconstructing its (truncated) provenance.
    pub fn seed_checkpoint<'a>(
        &mut self,
        node: NodeId,
        sealed_at: Timestamp,
        entries: impl IntoIterator<Item = (&'a Tuple, Timestamp)>,
    ) {
        for (tuple, appeared_at) in entries {
            let leaf = self.graph.upsert(Vertex::new(
                VertexKind::Checkpoint {
                    node,
                    tuple: tuple.clone(),
                    time: sealed_at,
                },
                Color::Black,
            ));
            let exist = self.graph.upsert(Vertex::new(
                VertexKind::Exist {
                    node,
                    tuple: tuple.clone(),
                    from: appeared_at,
                    until: None,
                },
                Color::Black,
            ));
            self.graph.add_edge(leaf, exist);
        }
    }

    /// Run the algorithm over a full history and return the graph.
    pub fn build(self, history: &History) -> ProvenanceGraph {
        self.build_traced(history).0
    }

    /// Like [`GraphBuilder::build`], but also report the per-rule evaluation
    /// counters (fires, index probes, candidates) accumulated by the replay
    /// machines while re-executing the history, summed across nodes.  The
    /// querier folds these into its `QueryStats`.
    pub fn build_traced(mut self, history: &History) -> (ProvenanceGraph, EvalMetrics) {
        for event in history.events() {
            self.step(event);
        }
        self.finalize();
        let mut metrics = EvalMetrics::default();
        for machine in self.machines.values() {
            metrics.merge(&machine.eval_metrics());
        }
        (self.graph, metrics)
    }

    /// Run the algorithm over a history, then register the given extra
    /// messages (Appendix C: `handle-extra-msg` is invoked for evidence
    /// messages that are inconsistent with the adopted view).
    pub fn build_with_extra(mut self, history: &History, extra: &[Message]) -> ProvenanceGraph {
        for event in history.events() {
            self.step(event);
        }
        for message in extra {
            self.handle_extra_msg(message);
        }
        self.finalize();
        self.graph
    }

    /// Apply end-of-history checks (only meaningful for quiescent histories).
    fn finalize(&mut self) {
        if !self.quiescent {
            return;
        }
        for entry in std::mem::take(&mut self.pending) {
            self.graph.set_color(entry.vertex, Color::Red);
            self.unacked.retain(|u| u.vertex != entry.vertex);
        }
    }

    /// Process a single event (main loop of Appendix B.1).
    pub fn step(&mut self, event: &Event) {
        let Event { time, node, kind } = event;
        match kind {
            EventKind::Snd(m) => {
                self.handle_event_snd(*node, m, *time);
                // snd events are not fed to the state machine.
            }
            EventKind::Rcv(m) => {
                self.handle_event_rcv(*node, m, *time);
                if let MessageBody::Delta(delta) = &m.body {
                    let outputs = self.feed_machine(
                        *node,
                        SmInput::Receive {
                            from: m.from,
                            delta: delta.clone(),
                        },
                    );
                    self.handle_outputs(*node, outputs, *time);
                }
            }
            EventKind::Ins(tuple) => {
                self.handle_event_ins(*node, tuple, *time);
                let outputs = self.feed_machine(*node, SmInput::InsertBase(tuple.clone()));
                self.handle_outputs(*node, outputs, *time);
            }
            EventKind::Del(tuple) => {
                self.handle_event_del(*node, tuple, *time);
                let outputs = self.feed_machine(*node, SmInput::DeleteBase(tuple.clone()));
                self.handle_outputs(*node, outputs, *time);
            }
        }
    }

    /// Finish construction and return the graph (for incremental use).
    pub fn finish(mut self) -> ProvenanceGraph {
        self.finalize();
        self.graph
    }

    /// Read access to the graph while building.
    pub fn graph(&self) -> &ProvenanceGraph {
        &self.graph
    }

    fn feed_machine(&mut self, node: NodeId, input: SmInput) -> Vec<SmOutput> {
        match self.machines.get_mut(&node) {
            Some(machine) => machine.handle(input),
            None => Vec::new(),
        }
    }

    fn handle_outputs(&mut self, node: NodeId, outputs: Vec<SmOutput>, time: Timestamp) {
        for output in outputs {
            match output {
                SmOutput::Derive { tuple, rule, body } => self.handle_output_der(node, &tuple, &rule, &body, time),
                SmOutput::Underive { tuple, rule, body } => self.handle_output_und(node, &tuple, &rule, &body, time),
                SmOutput::Send { to, delta } => self.handle_output_snd(node, to, delta, time),
            }
        }
    }

    // ----- library functions (Figure 10) ------------------------------------

    fn appear_local_tuple(&mut self, node: NodeId, tuple: &Tuple, vwhy: VertexId, time: Timestamp) {
        let v1 = self.graph.upsert(Vertex::new(
            VertexKind::Appear {
                node,
                tuple: tuple.clone(),
                time,
            },
            Color::Black,
        ));
        let v2 = self.graph.upsert(Vertex::new(
            VertexKind::Exist {
                node,
                tuple: tuple.clone(),
                from: time,
                until: None,
            },
            Color::Black,
        ));
        self.graph.add_edge(vwhy, v1);
        self.graph.add_edge(v1, v2);
    }

    fn disappear_local_tuple(&mut self, node: NodeId, tuple: &Tuple, vwhy: VertexId, time: Timestamp) {
        let v1 = self.graph.upsert(Vertex::new(
            VertexKind::Disappear {
                node,
                tuple: tuple.clone(),
                time,
            },
            Color::Black,
        ));
        self.graph.add_edge(vwhy, v1);
        if let Some(existing) = self.graph.open_exist(node, tuple) {
            self.graph.close_interval(existing, time);
            self.graph.add_edge(v1, existing);
        }
    }

    fn appear_remote_tuple(&mut self, node: NodeId, tuple: &Tuple, peer: NodeId, vwhy: VertexId, time: Timestamp) {
        let v1 = self.graph.upsert(Vertex::new(
            VertexKind::BelieveAppear {
                node,
                peer,
                tuple: tuple.clone(),
                time,
            },
            Color::Black,
        ));
        let v2 = self.graph.upsert(Vertex::new(
            VertexKind::Believe {
                node,
                peer,
                tuple: tuple.clone(),
                from: time,
                until: None,
            },
            Color::Black,
        ));
        self.graph.add_edge(vwhy, v1);
        self.graph.add_edge(v1, v2);
    }

    fn disappear_remote_tuple(&mut self, node: NodeId, tuple: &Tuple, peer: NodeId, vwhy: VertexId, time: Timestamp) {
        let v1 = self.graph.upsert(Vertex::new(
            VertexKind::BelieveDisappear {
                node,
                peer,
                tuple: tuple.clone(),
                time,
            },
            Color::Black,
        ));
        self.graph.add_edge(vwhy, v1);
        if let Some(existing) = self.graph.open_believe(node, tuple) {
            self.graph.close_interval(existing, time);
            self.graph.add_edge(v1, existing);
        }
    }

    fn flag_all_pending(&mut self, node: NodeId, time: Timestamp) {
        self.flag_ackpend(node);
        // Sends the machine produced that the node never actually transmitted.
        let (stale, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.pending)
            .into_iter()
            .partition(|p| p.node == node);
        self.pending = keep;
        for entry in stale {
            self.graph.set_color(entry.vertex, Color::Red);
            self.unacked.retain(|u| u.vertex != entry.vertex);
        }
        // Sends that have waited longer than 2·Tprop for an acknowledgment.
        let deadline = time.saturating_sub(2 * self.t_prop);
        let (expired, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.unacked)
            .into_iter()
            .partition(|u| u.node == node && u.sent_at < deadline);
        self.unacked = keep;
        for entry in expired {
            self.graph.set_color(entry.vertex, Color::Red);
        }
    }

    fn flag_ackpend(&mut self, node: NodeId) {
        let (stale, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.ackpend)
            .into_iter()
            .partition(|a| a.node == node);
        self.ackpend = keep;
        for entry in stale {
            self.graph.set_color(entry.vertex, Color::Red);
        }
    }

    fn add_send_vertex(
        &mut self,
        from: NodeId,
        to: NodeId,
        delta: &TupleDelta,
        vwhy: Option<VertexId>,
        time: Timestamp,
    ) -> VertexId {
        let kind = VertexKind::Send {
            node: from,
            peer: to,
            delta: delta.clone(),
            time,
        };
        let id = kind.identity();
        if !self.graph.contains(&id) {
            self.graph.upsert(Vertex::new(kind, Color::Yellow));
            self.nopreds.push(id);
            self.unacked.push(Unacked {
                node: from,
                vertex: id,
                sent_at: time,
            });
        }
        if let Some(why) = vwhy {
            if let Some(pos) = self.nopreds.iter().position(|v| *v == id) {
                self.graph.add_edge(why, id);
                self.nopreds.remove(pos);
            }
        }
        id
    }

    fn add_receive_vertex(&mut self, m: &Message, time: Timestamp) -> Option<VertexId> {
        let delta = m.as_delta()?.clone();
        // Ensure the remote send vertex exists (it may not, if the sender's
        // events are not part of the history we are replaying).
        self.add_send_vertex(m.from, m.to, &delta, None, m.sent_at);
        let kind = VertexKind::Receive {
            node: m.to,
            peer: m.from,
            delta: delta.clone(),
            time,
        };
        let id = kind.identity();
        if !self.graph.contains(&id) {
            self.graph.upsert(Vertex::new(kind, Color::Yellow));
        }
        if let Some(send) = self
            .graph
            .find_send(m.from, m.to, &delta.tuple, delta.polarity, Some(m.sent_at))
        {
            self.graph.add_edge(send, id);
        }
        Some(id)
    }

    fn add_red_unless_present(&mut self, kind: VertexKind) {
        let id = kind.identity();
        if !self.graph.contains(&id) {
            self.graph.upsert(Vertex::new(kind, Color::Red));
        }
    }

    // ----- event handlers (Figure 11, left column) ---------------------------

    fn handle_event_ins(&mut self, node: NodeId, tuple: &Tuple, time: Timestamp) {
        self.flag_all_pending(node, time);
        let v1 = self.graph.upsert(Vertex::new(
            VertexKind::Insert {
                node,
                tuple: tuple.clone(),
                time,
            },
            Color::Black,
        ));
        self.appear_local_tuple(node, tuple, v1, time);
    }

    fn handle_event_del(&mut self, node: NodeId, tuple: &Tuple, time: Timestamp) {
        self.flag_all_pending(node, time);
        let v1 = self.graph.upsert(Vertex::new(
            VertexKind::Delete {
                node,
                tuple: tuple.clone(),
                time,
            },
            Color::Black,
        ));
        self.disappear_local_tuple(node, tuple, v1, time);
    }

    fn handle_event_snd(&mut self, node: NodeId, m: &Message, _time: Timestamp) {
        self.seen_messages.insert(m.digest(), m.clone());
        match &m.body {
            MessageBody::Ack { of } => {
                // The node acknowledges a message it received earlier: the
                // corresponding receive vertex turns black.
                if let Some(pos) = self
                    .ackpend
                    .iter()
                    .position(|a| a.node == node && a.original_digest == *of)
                {
                    let entry = self.ackpend.remove(pos);
                    self.graph.set_color(entry.vertex, Color::Black);
                }
            }
            MessageBody::Delta(delta) => {
                match self
                    .pending
                    .iter()
                    .position(|p| p.node == node && p.to == m.to && p.delta == *delta)
                {
                    Some(pos) => {
                        // Expected send: consume the pending entry.
                        self.pending.remove(pos);
                    }
                    None => {
                        // The node sent a message its state machine never
                        // produced: red send vertex (Lemma 3, cases 1 and 3).
                        let v2 = self.add_send_vertex(node, m.to, delta, None, m.sent_at);
                        self.unacked.retain(|u| u.vertex != v2);
                        self.graph.set_color(v2, Color::Red);
                    }
                }
            }
        }
        self.flag_ackpend(node);
    }

    fn handle_event_rcv(&mut self, node: NodeId, m: &Message, time: Timestamp) {
        self.flag_all_pending(node, time);
        self.seen_messages.insert(m.digest(), m.clone());
        match &m.body {
            MessageBody::Ack { of } => {
                let Some(original) = self.seen_messages.get(of).cloned() else {
                    return;
                };
                // Evidence that the peer received our message: create its
                // receive vertex and turn our send vertex black.
                self.add_receive_vertex(&original, m.sent_at);
                if let Some(delta) = original.as_delta() {
                    if let Some(send) = self.graph.find_send(
                        original.from,
                        original.to,
                        &delta.tuple,
                        delta.polarity,
                        Some(original.sent_at),
                    ) {
                        if let Some(pos) = self.unacked.iter().position(|u| u.node == node && u.vertex == send) {
                            self.unacked.remove(pos);
                            self.graph.set_color(send, Color::Black);
                        }
                    }
                }
            }
            MessageBody::Delta(delta) => {
                if let Some(v1) = self.add_receive_vertex(m, time) {
                    self.ackpend.push(AckPending {
                        node,
                        original_digest: m.digest(),
                        vertex: v1,
                    });
                    match delta.polarity {
                        Polarity::Plus => self.appear_remote_tuple(node, &delta.tuple, m.from, v1, time),
                        Polarity::Minus => self.disappear_remote_tuple(node, &delta.tuple, m.from, v1, time),
                    }
                }
            }
        }
    }

    // ----- output handlers (Figure 11, right column) --------------------------

    /// Find the vertex to use as the provenance of body tuple `tuple` for a
    /// (un)derivation happening at `time` (lines 151–160 / 168–177).
    fn body_vertex(&mut self, node: NodeId, tuple: &Tuple, time: Timestamp, appearing: bool) -> VertexId {
        if appearing {
            if let Some(v) = self.graph.believe_appear_at(node, tuple, time) {
                return v;
            }
            if let Some(v) = self.graph.appear_at(node, tuple, time) {
                return v;
            }
        } else {
            if let Some(v) = self.graph.believe_disappear_at(node, tuple, time) {
                return v;
            }
            if let Some(v) = self.graph.disappear_at(node, tuple, time) {
                return v;
            }
        }
        if let Some(v) = self.graph.open_believe(node, tuple) {
            return v;
        }
        if let Some(v) = self.graph.open_exist(node, tuple) {
            return v;
        }
        // Fall back to (creating) an exist vertex; for correct traces this
        // only happens when replay starts from a checkpoint that did not
        // record the tuple's original appearance.
        self.graph.upsert(Vertex::new(
            VertexKind::Exist {
                node,
                tuple: tuple.clone(),
                from: time,
                until: None,
            },
            Color::Black,
        ))
    }

    fn handle_output_der(&mut self, node: NodeId, tuple: &Tuple, rule: &str, body: &[Tuple], time: Timestamp) {
        let v1 = self.graph.upsert(Vertex::new(
            VertexKind::Derive {
                node,
                tuple: tuple.clone(),
                rule: rule.to_string(),
                time,
            },
            Color::Black,
        ));
        for body_tuple in body {
            let why = self.body_vertex(node, body_tuple, time, true);
            self.graph.add_edge(why, v1);
        }
        self.appear_local_tuple(node, tuple, v1, time);
    }

    fn handle_output_und(&mut self, node: NodeId, tuple: &Tuple, rule: &str, body: &[Tuple], time: Timestamp) {
        let v1 = self.graph.upsert(Vertex::new(
            VertexKind::Underive {
                node,
                tuple: tuple.clone(),
                rule: rule.to_string(),
                time,
            },
            Color::Black,
        ));
        for body_tuple in body {
            let why = self.body_vertex(node, body_tuple, time, false);
            self.graph.add_edge(why, v1);
        }
        self.disappear_local_tuple(node, tuple, v1, time);
    }

    fn handle_output_snd(&mut self, node: NodeId, to: NodeId, delta: TupleDelta, time: Timestamp) {
        let vwhy = match delta.polarity {
            Polarity::Plus => self.graph.appear_at(node, &delta.tuple, time),
            Polarity::Minus => self.graph.disappear_at(node, &delta.tuple, time),
        };
        let v1 = self.add_send_vertex(node, to, &delta, vwhy, time);
        self.pending.push(PendingSend {
            node,
            to,
            delta,
            vertex: v1,
        });
    }

    /// Appendix C / Figure 11: register a message that is *not* explained by
    /// the adopted view — both endpoints get red vertices.
    pub fn handle_extra_msg(&mut self, m: &Message) {
        let Some(delta) = m.as_delta() else { return };
        self.add_red_unless_present(VertexKind::Send {
            node: m.from,
            peer: m.to,
            delta: delta.clone(),
            time: m.sent_at,
        });
        self.add_red_unless_present(VertexKind::Receive {
            node: m.to,
            peer: m.from,
            delta: delta.clone(),
            time: m.sent_at,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_datalog::Value;
    use snp_datalog::{AggKind, Atom, Rule, Term};
    use snp_datalog::{Engine, RuleSet};

    /// R1: reach(@X, Y) :- link(@X, Y)
    /// R2: reach(@Y, X) :- link(@X, Y)   (head homed on the neighbor → message)
    fn simple_rules() -> RuleSet {
        let r1 = Rule::standard(
            "R1",
            Atom::new("reach", Term::var("X"), vec![Term::var("Y")]),
            vec![Atom::new("link", Term::var("X"), vec![Term::var("Y")])],
            vec![],
        );
        let r2 = Rule::standard(
            "R2",
            Atom::new("reach", Term::var("Y"), vec![Term::var("X")]),
            vec![Atom::new("link", Term::var("X"), vec![Term::var("Y")])],
            vec![],
        );
        RuleSet::new(vec![r1, r2]).expect("valid")
    }

    fn link(x: u64, y: u64) -> Tuple {
        Tuple::new("link", NodeId(x), vec![Value::node(y)])
    }

    fn reach(x: u64, y: u64) -> Tuple {
        Tuple::new("reach", NodeId(x), vec![Value::node(y)])
    }

    fn builder_for(nodes: &[u64]) -> GraphBuilder {
        let mut b = GraphBuilder::new(1_000_000);
        for &n in nodes {
            b.register_machine(NodeId(n), Box::new(Engine::new(NodeId(n), simple_rules())));
        }
        b
    }

    /// A correct two-node history: node 1 inserts link(1,2), derives reach(@1,2)
    /// and reach(@2,1), sends +reach(@2,1) to node 2, node 2 receives and acks.
    fn correct_history() -> History {
        let delta = TupleDelta::plus(reach(2, 1));
        let msg = Message::delta(NodeId(1), NodeId(2), delta, 10, 1);
        let ack = Message::ack(&msg, 20, 1);
        History::from_events(vec![
            Event::new(10, NodeId(1), EventKind::Ins(link(1, 2))),
            Event::new(10, NodeId(1), EventKind::Snd(msg.clone())),
            Event::new(20, NodeId(2), EventKind::Rcv(msg)),
            Event::new(20, NodeId(2), EventKind::Snd(ack.clone())),
            Event::new(30, NodeId(1), EventKind::Rcv(ack)),
        ])
    }

    #[test]
    fn correct_history_has_no_red_vertices() {
        let graph = builder_for(&[1, 2]).build(&correct_history());
        assert!(
            graph.faulty_nodes().is_empty(),
            "correct nodes must have no red vertices (Lemma 2)"
        );
        assert!(graph.vertex_count() > 5);
        // The send and receive vertices are black (acknowledged).
        let send = graph
            .find_send(NodeId(1), NodeId(2), &reach(2, 1), Polarity::Plus, None)
            .expect("send vertex");
        let recv = graph
            .find_receive(NodeId(2), NodeId(1), &reach(2, 1), Polarity::Plus)
            .expect("receive vertex");
        assert_eq!(graph.vertex(&send).unwrap().color, Color::Black);
        assert_eq!(graph.vertex(&recv).unwrap().color, Color::Black);
        assert!(graph.has_edge(&send, &recv));
    }

    #[test]
    fn derive_vertex_links_to_body_and_head() {
        let graph = builder_for(&[1, 2]).build(&correct_history());
        // Find derive vertex of reach(@1,2) on node 1 and check it has the
        // link tuple's vertex as a predecessor and an appear as successor.
        let derive = graph
            .vertices()
            .find(|(_, v)| matches!(&v.kind, VertexKind::Derive { tuple, .. } if *tuple == reach(1, 2)))
            .map(|(id, _)| *id)
            .expect("derive vertex for reach(@1,2)");
        let preds = graph.predecessors(&derive);
        assert!(!preds.is_empty());
        assert!(preds
            .iter()
            .any(|p| graph.vertex(p).unwrap().kind.tuple() == &link(1, 2)));
        let succs = graph.successors(&derive);
        assert!(succs.iter().any(
            |s| matches!(&graph.vertex(s).unwrap().kind, VertexKind::Appear { tuple, .. } if *tuple == reach(1, 2))
        ));
    }

    #[test]
    fn believed_tuple_has_full_cross_node_chain() {
        let graph = builder_for(&[1, 2]).build(&correct_history());
        // appear(1, reach(2,1)) -> send -> receive -> believe-appear(2) -> believe(2)
        let believe_appear = graph
            .vertices()
            .find(|(_, v)| matches!(&v.kind, VertexKind::BelieveAppear { node, tuple, .. } if *node == NodeId(2) && *tuple == reach(2, 1)))
            .map(|(id, _)| *id)
            .expect("believe-appear on node 2");
        let preds = graph.predecessors(&believe_appear);
        assert!(preds
            .iter()
            .any(|p| matches!(graph.vertex(p).unwrap().kind, VertexKind::Receive { .. })));
        let succs = graph.successors(&believe_appear);
        assert!(succs
            .iter()
            .any(|s| matches!(graph.vertex(s).unwrap().kind, VertexKind::Believe { .. })));
    }

    #[test]
    fn unsent_message_colors_send_red() {
        // Node 1 inserts link(1,2) (so the machine wants to send +reach(@2,1))
        // but the history contains no snd event; the next event on node 1
        // flags the pending send red.
        let history = History::from_events(vec![
            Event::new(10, NodeId(1), EventKind::Ins(link(1, 2))),
            Event::new(50, NodeId(1), EventKind::Ins(link(1, 3))),
        ]);
        let graph = builder_for(&[1, 2, 3]).build(&history);
        assert!(
            graph.faulty_nodes().contains(&NodeId(1)),
            "suppressed send must produce a red vertex (Lemma 3 case 4)"
        );
    }

    #[test]
    fn fabricated_message_colors_send_red() {
        // Node 1 sends +reach(@2,1) without any derivation justifying it.
        let msg = Message::delta(NodeId(1), NodeId(2), TupleDelta::plus(reach(2, 1)), 10, 1);
        let history = History::from_events(vec![
            Event::new(10, NodeId(1), EventKind::Snd(msg.clone())),
            Event::new(20, NodeId(2), EventKind::Rcv(msg)),
        ]);
        let graph = builder_for(&[1, 2]).build(&history);
        assert!(
            graph.faulty_nodes().contains(&NodeId(1)),
            "fabricated send must be red (Lemma 3 cases 1/3)"
        );
        assert!(
            !graph.faulty_nodes().contains(&NodeId(2)),
            "the receiver is not at fault for the sender's lie"
        );
    }

    #[test]
    fn missing_ack_colors_receive_red() {
        // Node 2 receives a (legitimate) message but never acknowledges it;
        // its next event flags the receive vertex red.
        let delta = TupleDelta::plus(reach(2, 1));
        let msg = Message::delta(NodeId(1), NodeId(2), delta, 10, 1);
        let history = History::from_events(vec![
            Event::new(10, NodeId(1), EventKind::Ins(link(1, 2))),
            Event::new(10, NodeId(1), EventKind::Snd(msg.clone())),
            Event::new(20, NodeId(2), EventKind::Rcv(msg)),
            Event::new(40, NodeId(2), EventKind::Ins(link(2, 3))),
        ]);
        let graph = builder_for(&[1, 2]).build(&history);
        let recv = graph
            .find_receive(NodeId(2), NodeId(1), &reach(2, 1), Polarity::Plus)
            .expect("receive vertex");
        assert_eq!(
            graph.vertex(&recv).unwrap().color,
            Color::Red,
            "unacknowledged receive must be red (Lemma 3 case 2)"
        );
        assert!(graph.faulty_nodes().contains(&NodeId(2)));
    }

    #[test]
    fn stale_unacked_send_becomes_red() {
        // Node 1 sends legitimately but no ack ever arrives; after 2·Tprop the
        // send vertex turns red at node 1's next event.
        let delta = TupleDelta::plus(reach(2, 1));
        let msg = Message::delta(NodeId(1), NodeId(2), delta, 10, 1);
        let history = History::from_events(vec![
            Event::new(10, NodeId(1), EventKind::Ins(link(1, 2))),
            Event::new(10, NodeId(1), EventKind::Snd(msg)),
            Event::new(5_000_000, NodeId(1), EventKind::Ins(link(1, 3))),
        ]);
        let graph = builder_for(&[1, 2]).build(&history);
        let send = graph
            .find_send(NodeId(1), NodeId(2), &reach(2, 1), Polarity::Plus, None)
            .expect("send vertex");
        assert_eq!(graph.vertex(&send).unwrap().color, Color::Red);
    }

    #[test]
    fn delete_closes_exist_interval() {
        let history = History::from_events(vec![
            Event::new(10, NodeId(1), EventKind::Ins(link(1, 2))),
            Event::new(90, NodeId(1), EventKind::Del(link(1, 2))),
        ]);
        // Avoid the pending-send red by using a single-node ruleset with no
        // remote heads: register no machine for node 1 (graph only records
        // insert/delete/appear/disappear).
        let mut builder = GraphBuilder::new(1_000_000);
        builder.register_machine(
            NodeId(1),
            Box::new(Engine::new(
                NodeId(1),
                RuleSet::new(vec![Rule::standard(
                    "R1",
                    Atom::new("reach", Term::var("X"), vec![Term::var("Y")]),
                    vec![Atom::new("link", Term::var("X"), vec![Term::var("Y")])],
                    vec![],
                )])
                .unwrap(),
            )),
        );
        let graph = builder.build(&history);
        assert!(graph.faulty_nodes().is_empty());
        let exist = graph
            .vertices()
            .find(|(_, v)| matches!(&v.kind, VertexKind::Exist { tuple, .. } if *tuple == link(1, 2)))
            .map(|(_, v)| v.clone())
            .expect("exist vertex");
        match exist.kind {
            VertexKind::Exist { from, until, .. } => {
                assert_eq!(from, 10);
                assert_eq!(until, Some(90));
            }
            _ => unreachable!(),
        }
        // The derived reach tuple is also underived.
        assert!(graph
            .vertices()
            .any(|(_, v)| matches!(&v.kind, VertexKind::Underive { tuple, .. } if *tuple == reach(1, 2))));
    }

    #[test]
    fn aggregate_provenance_appears_in_graph() {
        // MinCost-style: bestCost derived from the cheapest cost tuple.
        let r1 = Rule::standard(
            "R1",
            Atom::new("cost", Term::var("X"), vec![Term::var("Y"), Term::var("K")]),
            vec![Atom::new("link", Term::var("X"), vec![Term::var("Y"), Term::var("K")])],
            vec![],
        );
        let r3 = Rule::aggregate(
            "R3",
            Atom::new("bestCost", Term::var("X"), vec![Term::var("Y"), Term::var("K")]),
            Atom::new("cost", Term::var("X"), vec![Term::var("Y"), Term::var("K")]),
            AggKind::Min,
            "K",
        );
        let ruleset = RuleSet::new(vec![r1, r3]).unwrap();
        let mut builder = GraphBuilder::new(1_000_000);
        builder.register_machine(NodeId(1), Box::new(Engine::new(NodeId(1), ruleset)));
        let cheap = Tuple::new("link", NodeId(1), vec![Value::node(2u64), Value::Int(3)]);
        let pricey = Tuple::new("link", NodeId(1), vec![Value::node(2u64), Value::Int(9)]);
        let history = History::from_events(vec![
            Event::new(10, NodeId(1), EventKind::Ins(pricey)),
            Event::new(20, NodeId(1), EventKind::Ins(cheap)),
        ]);
        let graph = builder.build(&history);
        // bestCost(…,3) must be derived, and bestCost(…,9) underived at t=20.
        let best3 = Tuple::new("bestCost", NodeId(1), vec![Value::node(2u64), Value::Int(3)]);
        let best9 = Tuple::new("bestCost", NodeId(1), vec![Value::node(2u64), Value::Int(9)]);
        assert!(graph
            .vertices()
            .any(|(_, v)| matches!(&v.kind, VertexKind::Derive { tuple, .. } if *tuple == best3)));
        assert!(graph
            .vertices()
            .any(|(_, v)| matches!(&v.kind, VertexKind::Underive { tuple, .. } if *tuple == best9)));
        assert!(graph.faulty_nodes().is_empty());
    }

    #[test]
    fn extra_message_creates_red_endpoints() {
        let mut builder = builder_for(&[1, 2]);
        let history = correct_history();
        for event in history.events() {
            builder.step(event);
        }
        let extra = Message::delta(NodeId(1), NodeId(2), TupleDelta::plus(reach(2, 9)), 99, 7);
        builder.handle_extra_msg(&extra);
        let graph = builder.finish();
        assert!(graph.faulty_nodes().contains(&NodeId(1)));
    }

    #[test]
    fn checkpoint_seeded_replay_closes_seeded_intervals_without_red() {
        // A suffix replay: the checkpoint recorded link(1,2) (appeared at 40,
        // sealed at 100) and the restored machine already holds it, so the
        // suffix history contains only the later delete.
        let ruleset = RuleSet::new(vec![Rule::standard(
            "R1",
            Atom::new("reach", Term::var("X"), vec![Term::var("Y")]),
            vec![Atom::new("link", Term::var("X"), vec![Term::var("Y")])],
            vec![],
        )])
        .unwrap();
        let mut machine = Engine::new(NodeId(1), ruleset);
        machine.handle(snp_datalog::SmInput::InsertBase(link(1, 2)));
        let mut builder = GraphBuilder::new(1_000_000);
        let reach_tuple = Tuple::new("reach", NodeId(1), vec![Value::node(2u64)]);
        builder.seed_checkpoint(NodeId(1), 100, [(&link(1, 2), 40u64), (&reach_tuple, 40u64)]);
        builder.register_machine(NodeId(1), Box::new(machine));
        let history = History::from_events(vec![Event::new(150, NodeId(1), EventKind::Del(link(1, 2)))]);
        let graph = builder.build(&history);
        assert!(graph.faulty_nodes().is_empty(), "clean suffix must stay clean");
        // The seeded exist interval was closed by the delete.
        let closed = graph.vertices().any(|(_, v)| {
            matches!(&v.kind, VertexKind::Exist { tuple, from, until, .. }
                if *tuple == link(1, 2) && *from == 40 && *until == Some(150))
        });
        assert!(closed, "delete must close the checkpoint-seeded exist interval");
        // The underivation of reach hangs off checkpoint-seeded state, and the
        // explanation of the disappearance bottoms out at checkpoint leaves.
        let disappear = graph
            .vertices()
            .find(|(_, v)| matches!(&v.kind, VertexKind::Disappear { tuple, .. } if *tuple == reach_tuple))
            .map(|(id, _)| *id)
            .expect("reach must be underived");
        let explanation = crate::query::explain(&graph, disappear);
        assert!(crate::query::is_legitimate_explanation(&graph, &explanation));
        let roots = crate::query::root_causes(&graph, &explanation);
        assert!(roots
            .iter()
            .any(|id| matches!(graph.vertex(id).map(|v| &v.kind), Some(VertexKind::Delete { .. }))));
    }

    #[test]
    fn prefix_yields_subgraph_monotonicity() {
        // Theorem 1: G(h1) ⊆* G(h2) when h1 is a prefix of h2.
        let history = correct_history();
        for cut in 1..=history.len() {
            let prefix = history.prefix(cut);
            let g_prefix = builder_for(&[1, 2]).build(&prefix);
            let g_full = builder_for(&[1, 2]).build(&history);
            assert!(
                g_prefix.is_subgraph_of(&g_full),
                "prefix of length {cut} must yield a subgraph"
            );
        }
    }

    #[test]
    fn compositionality_projection_matches_per_node_run() {
        // Theorem 2: G(h | i) = G(h) | i, for the vertex sets hosted on i.
        let history = correct_history();
        let g_full = builder_for(&[1, 2]).build(&history);
        for node in [NodeId(1), NodeId(2)] {
            let g_local = builder_for(&[1, 2]).build(&history.project(node));
            // Every vertex hosted on `node` in the full graph appears in the
            // per-node reconstruction and vice versa.
            for (id, v) in g_full.vertices_on(node) {
                assert!(
                    g_local.contains(id),
                    "full-graph vertex {} missing from per-node run",
                    v.kind
                );
            }
            for (id, v) in g_local.vertices_on(node) {
                assert!(
                    g_full.contains(id),
                    "per-node vertex {} missing from full graph",
                    v.kind
                );
            }
        }
    }
}

//! `snp_rulelint` — lint NDlog rule programs with the static analyzer.
//!
//! ```text
//! snp_rulelint --all-apps [--deny-warnings] [--json] [--out FILE]
//! snp_rulelint [--deny-warnings] [--json] [--out FILE] FILE.dl ...
//! ```
//!
//! `--all-apps` lints every shipped application's declared program against
//! the base tuples its own workload injects — the same check
//! `DeploymentBuilder::build` enforces, plus warnings and advisories.
//! Positional arguments are read as textual NDlog programs (conventionally
//! `.dl` files).  `--json` prints the machine-readable document instead of
//! text; `--out FILE` additionally writes that document to `FILE` (the CI
//! bench gate pins the `totals` counts of `BENCH_rulecheck.json`).
//!
//! Exit status: 0 clean, 1 when any error-level finding exists (or any
//! warning under `--deny-warnings`), 2 on usage errors.  Advisories never
//! fail the lint — they flag scan-fallback joins worth cross-checking
//! against `EvalMetrics`, not defects.

use snp_rulecheck::{lint_builtin_apps, lint_source, render_reports, reports_to_json, totals, LintReport};
use std::process::ExitCode;

const USAGE: &str = "usage: snp_rulelint (--all-apps | FILE.dl ...) [--deny-warnings] [--json] [--out FILE]";

fn main() -> ExitCode {
    let mut all_apps = false;
    let mut deny_warnings = false;
    let mut json = false;
    let mut out_path: Option<String> = None;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--all-apps" => all_apps = true,
            "--deny-warnings" => deny_warnings = true,
            "--json" => json = true,
            "--out" => match args.next() {
                Some(path) => out_path = Some(path),
                None => {
                    eprintln!("--out requires a file path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if !all_apps && files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut reports: Vec<LintReport> = Vec::new();
    if all_apps {
        reports.extend(lint_builtin_apps());
    }
    for file in &files {
        match std::fs::read_to_string(file) {
            // A standalone file has no workload, so no signature evidence.
            Ok(source) => reports.push(lint_source(file, &source, &[])),
            Err(e) => {
                eprintln!("cannot read {file}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let document = reports_to_json(&reports);
    if json {
        println!("{}", document.render());
    } else {
        print!("{}", render_reports(&reports));
    }
    if let Some(path) = out_path {
        snp_bench::json::write_json(&path, &document);
    }

    let (errors, warnings, _) = totals(&reports);
    if errors > 0 || (deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! # snp-rulecheck — lint tooling over the `snp-datalog` static analyzer
//!
//! The analysis passes themselves live in [`snp_datalog::analysis`], where
//! the engines and the deployment builder can enforce them without a
//! dependency cycle.  This crate is the *tooling* half:
//!
//! * [`lint_source`] — parse a textual NDlog program with statement spans
//!   ([`snp_datalog::parser::parse_program_spanned`]), run every analysis
//!   pass (optionally with base-tuple signature evidence), and attach each
//!   diagnostic to the source position of its rule.
//! * [`builtin_apps`] / [`lint_builtin_apps`] — the registry of shipped
//!   applications that declare a rule program ([`snp_core::Application`]'s
//!   `program()`), each linted against the base tuples its own workload
//!   injects.
//! * [`LintReport`] / [`render_reports`] / [`reports_to_json`] — structured
//!   results, the human-readable rendering and the machine-readable JSON the
//!   CI gate pins counts on.
//!
//! The `snp_rulelint` binary is a thin argv wrapper over these functions.

#![forbid(unsafe_code)]
// Unit tests may unwrap: a panic is the assertion.
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_docs)]

use snp_bench::json::Json;
use snp_core::deploy::{Application, WorkloadOp};
use snp_datalog::{analyze_with_facts, Diagnostic, Pass, Severity, Span, Tuple};
use std::collections::BTreeMap;

/// Code used for the synthetic diagnostic a parse failure is reported as:
/// the program never reached the analyzer, but the CLI still renders it as
/// one (error-severity) finding so every failure mode has one shape.
pub const PARSE_ERROR_CODE: &str = "RC0002";

/// The lint result for one program.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Program name: the application name or the `.dl` file path.
    pub name: String,
    /// Number of parsed rules (0 when parsing failed).
    pub rules: usize,
    /// Every finding, most severe first, spans attached where known.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// Number of error-level findings (parse failures included).
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warnings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of advisory findings.
    pub fn advice(&self) -> usize {
        self.count(Severity::Advice)
    }

    /// Human-readable rendering: a one-line summary plus one line per
    /// finding, matching [`Diagnostic::render`].
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}: {} rules, {} errors, {} warnings, {} advice\n",
            self.name,
            self.rules,
            self.errors(),
            self.warnings(),
            self.advice()
        );
        for d in &self.diagnostics {
            out.push_str("  ");
            out.push_str(&d.render());
            out.push('\n');
        }
        out
    }

    /// The JSON object for this program, as emitted under `programs` in the
    /// `snp_rulelint --json` document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(self.name.clone())),
            ("rules", Json::Int(self.rules as u64)),
            ("errors", Json::Int(self.errors() as u64)),
            ("warnings", Json::Int(self.warnings() as u64)),
            ("advice", Json::Int(self.advice() as u64)),
            (
                "diagnostics",
                Json::Arr(self.diagnostics.iter().map(diagnostic_to_json).collect()),
            ),
        ])
    }
}

fn diagnostic_to_json(d: &Diagnostic) -> Json {
    let mut fields = vec![
        ("code".to_string(), Json::str(d.code)),
        ("pass".to_string(), Json::str(d.pass.name())),
        ("severity".to_string(), Json::str(d.severity.label())),
    ];
    if let Some(rule) = &d.rule {
        fields.push(("rule".to_string(), Json::str(rule.clone())));
    }
    if let Some(span) = d.span {
        fields.push(("line".to_string(), Json::Int(span.line as u64)));
        fields.push(("col".to_string(), Json::Int(span.col as u64)));
    }
    fields.push(("message".to_string(), Json::str(d.message.clone())));
    Json::Obj(fields)
}

/// Lint one textual NDlog program: parse (with statement spans), analyze
/// (with `facts` as base-tuple signature evidence), and attach each
/// diagnostic to the source position of its rule.  A parse failure becomes
/// a single [`PARSE_ERROR_CODE`] error-level diagnostic, so callers handle
/// every failure mode through the same report shape.
pub fn lint_source(name: &str, source: &str, facts: &[Tuple]) -> LintReport {
    let spanned = match snp_datalog::parser::parse_program_spanned(source) {
        Ok(spanned) => spanned,
        Err(message) => {
            return LintReport {
                name: name.to_string(),
                rules: 0,
                diagnostics: vec![Diagnostic {
                    code: PARSE_ERROR_CODE,
                    pass: Pass::Structure,
                    severity: Severity::Error,
                    rule: None,
                    message,
                    span: None,
                }],
            }
        }
    };
    let spans: BTreeMap<String, Span> = spanned.iter().map(|(rule, span)| (rule.id.clone(), *span)).collect();
    let rules: Vec<_> = spanned.into_iter().map(|(rule, _)| rule).collect();
    let mut diagnostics = analyze_with_facts(&rules, facts);
    for d in &mut diagnostics {
        if let Some(rule) = &d.rule {
            d.span = spans.get(rule).copied();
        }
    }
    // Most severe first; within a severity, keep analyzer order (pass order).
    diagnostics.sort_by_key(|d| std::cmp::Reverse(d.severity));
    LintReport {
        name: name.to_string(),
        rules: rules.len(),
        diagnostics,
    }
}

/// The shipped applications that declare a rule program, in deterministic
/// order.  Each is linted against the base tuples its own workload injects
/// (seed 0), exactly what `DeploymentBuilder` validates at build time.
pub fn builtin_apps() -> Vec<Box<dyn Application>> {
    vec![
        Box::new(snp_apps::mincost::MinCost::example()),
        Box::new(snp_apps::bgp::BgpScenario::quagga_like().app(true)),
        Box::new(snp_apps::chord::ChordScenario::small(60).app(None)),
        Box::new(snp_apps::mapreduce::MapReduceScenario::small().job(None, 0)),
        Box::new(snp_apps::fleet::FleetDemo::new()),
    ]
}

/// The base tuples an application's workload would inject, used as
/// signature evidence when linting its program.
pub fn workload_facts(app: &dyn Application, seed: u64) -> Vec<Tuple> {
    app.workload(seed)
        .into_iter()
        .map(|event| match event.op {
            WorkloadOp::Insert(tuple) | WorkloadOp::Delete(tuple) => tuple,
        })
        .collect()
}

/// Lint every [`builtin_apps`] program against its own workload.
pub fn lint_builtin_apps() -> Vec<LintReport> {
    builtin_apps()
        .into_iter()
        .filter_map(|app| {
            let source = app.program()?;
            let facts = workload_facts(app.as_ref(), 0);
            Some(lint_source(&app.name(), &source, &facts))
        })
        .collect()
}

/// Render a batch of reports plus a totals line.
pub fn render_reports(reports: &[LintReport]) -> String {
    let mut out = String::new();
    for report in reports {
        out.push_str(&report.render());
    }
    let (errors, warnings, advice) = totals(reports);
    out.push_str(&format!(
        "total: {} programs, {errors} errors, {warnings} warnings, {advice} advice\n",
        reports.len()
    ));
    out
}

/// Sum the `(errors, warnings, advice)` counts across reports.
pub fn totals(reports: &[LintReport]) -> (usize, usize, usize) {
    reports.iter().fold((0, 0, 0), |(e, w, a), r| {
        (e + r.errors(), w + r.warnings(), a + r.advice())
    })
}

/// The machine-readable document `snp_rulelint --json` emits; the CI gate
/// (`bench_gate`) pins the `totals` counts.
pub fn reports_to_json(reports: &[LintReport]) -> Json {
    let (errors, warnings, advice) = totals(reports);
    Json::obj([
        ("programs", Json::Arr(reports.iter().map(LintReport::to_json).collect())),
        (
            "totals",
            Json::obj([
                ("programs", Json::Int(reports.len() as u64)),
                ("errors", Json::Int(errors as u64)),
                ("warnings", Json::Int(warnings as u64)),
                ("advice", Json::Int(advice as u64)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_program_is_error_and_warning_free() {
        let reports = lint_builtin_apps();
        assert_eq!(reports.len(), 5, "all five shipped apps declare a program");
        for report in &reports {
            assert_eq!(report.errors(), 0, "{}", report.render());
            assert_eq!(report.warnings(), 0, "{}", report.render());
            assert!(report.rules > 0);
        }
    }

    #[test]
    fn diagnostics_carry_source_spans() {
        let source = "R1 a(@X, Y) :- b(@X, Y).\nR2 out(@X, Z) :- b(@X, Y).";
        let report = lint_source("test", source, &[]);
        let rc0101 = report
            .diagnostics
            .iter()
            .find(|d| d.code == "RC0101")
            .expect("unbound head variable");
        assert_eq!(rc0101.rule.as_deref(), Some("R2"));
        let span = rc0101.span.expect("span attached");
        assert_eq!((span.line, span.col), (2, 1));
    }

    #[test]
    fn parse_failures_become_a_single_error_diagnostic() {
        let report = lint_source("bad", "R1 broken(", &[]);
        assert_eq!(report.rules, 0);
        assert_eq!(report.errors(), 1);
        assert_eq!(report.diagnostics[0].code, PARSE_ERROR_CODE);
    }

    #[test]
    fn json_document_has_the_gated_totals() {
        let reports = lint_builtin_apps();
        let doc = reports_to_json(&reports);
        assert_eq!(doc.get("totals.programs").and_then(Json::as_f64), Some(5.0));
        assert_eq!(doc.get("totals.errors").and_then(Json::as_f64), Some(0.0));
        assert_eq!(doc.get("totals.warnings").and_then(Json::as_f64), Some(0.0));
        // Round-trips through the bench JSON parser (what bench_gate reads).
        let parsed = Json::parse(&doc.render()).expect("parses");
        assert_eq!(parsed.render(), doc.render());
    }

    #[test]
    fn reports_sort_errors_before_advice() {
        // One safety error plus a scan-fallback advisory in one program.
        let source = "R1 out(@X, Z) :- p(@X, A), q(@X, B).";
        let report = lint_source("mixed", source, &[]);
        assert!(report.errors() >= 1);
        assert!(!report.diagnostics.is_empty());
        assert_eq!(report.diagnostics[0].severity, Severity::Error);
    }
}

//! A mini MapReduce with reported provenance (§6.2) and the corrupt-mapper
//! scenario behind the Hadoop-Squirrel query (Figure 4, §7.3).
//!
//! The framework mirrors Hadoop's WordCount pipeline at tuple granularity:
//!
//! ```text
//! mapInput(@M, split, text)                       (base tuple: the split)
//!   └─ mapOut(@M, split, word, offset)            (one per occurrence)
//!        └─ combineOut(@M, split, word, count)    (per-split combiner)
//!             └─ shuffle(@R, word, count, M, split)   (sent to the reducer)
//!                  └─ reduceOut(@R, word, total)      (running total)
//! ```
//!
//! Each derivation *reports* its input tuples, which is exactly the
//! "reported provenance" method: the UID of every key-value pair is its
//! content plus execution context (§6.2).

use snp_core::deploy::{AppNode, Application, Deployment, WorkloadEvent};
use snp_crypto::keys::NodeId;
use snp_datalog::{Polarity, SmInput, SmOutput, StateMachine, Tuple, TupleDelta, Value};
use snp_sim::rng::DetRng;
use snp_sim::SimTime;
use std::collections::BTreeMap;

/// The declarative companion of the MapReduce job: the dataflow from map
/// output to reduced totals as NDlog rules, statically analyzable and
/// cross-checked against the workload's base tuples by `DeploymentBuilder`.
///
/// The machines report provenance at key-value granularity (§6.2); these
/// rules are the shape those reports follow.  M1 and M3 use `count` over
/// the per-occurrence / per-combiner tuples (the engine's aggregates have
/// no `sum`, so M3 counts contributions rather than totalling them — the
/// hand-written reducer does the summing).  `reducerOf` models the word
/// partitioning function [`reducer_for`]; tokenization of `mapInput` text
/// into `mapOut` occurrences is not expressible in the rule language and
/// lives only in the mapper machine.
pub const MAPREDUCE_PROGRAM: &str = r#"
    # M1: the combiner pre-aggregates each split's word occurrences
    M1 combineOut(@M, S, W, count<O>) :- mapOut(@M, S, W, O).
    # M2: each combined count is shuffled to the reducer owning the word
    M2 shuffle(@R, W, C, M, S) maybe  :- combineOut(@M, S, W, C), reducerOf(@M, W, R).
    # M3: a reducer folds the contributions shuffled to it for each word
    M3 reduceOut(@R, W, count<C>)     :- shuffle(@R, W, C, M, S).
"#;

// ---- tuple constructors -------------------------------------------------------

/// `mapInput(@m, splitId, text)`.
pub fn map_input(mapper: NodeId, split: i64, text: &str) -> Tuple {
    Tuple::new("mapInput", mapper, vec![Value::Int(split), Value::str(text)])
}

/// `mapOut(@m, splitId, word, offset)`.
pub fn map_out(mapper: NodeId, split: i64, word: &str, offset: i64) -> Tuple {
    Tuple::new(
        "mapOut",
        mapper,
        vec![Value::Int(split), Value::str(word), Value::Int(offset)],
    )
}

/// `combineOut(@m, splitId, word, count)`.
pub fn combine_out(mapper: NodeId, split: i64, word: &str, count: i64) -> Tuple {
    Tuple::new(
        "combineOut",
        mapper,
        vec![Value::Int(split), Value::str(word), Value::Int(count)],
    )
}

/// `shuffle(@r, word, count, mapper, splitId)`.
pub fn shuffle(reducer: NodeId, word: &str, count: i64, mapper: NodeId, split: i64) -> Tuple {
    Tuple::new(
        "shuffle",
        reducer,
        vec![
            Value::str(word),
            Value::Int(count),
            Value::Node(mapper),
            Value::Int(split),
        ],
    )
}

/// `reduceOut(@r, word, total)`.
pub fn reduce_out(reducer: NodeId, word: &str, total: i64) -> Tuple {
    Tuple::new("reduceOut", reducer, vec![Value::str(word), Value::Int(total)])
}

/// Which reducer is responsible for a word.
pub fn reducer_for(word: &str, reducers: &[NodeId]) -> NodeId {
    // Lossless: the modulus bounds the index below `reducers.len()`.
    #[allow(clippy::cast_possible_truncation)]
    let idx = (snp_crypto::hash(word.as_bytes()).to_u64() % reducers.len() as u64) as usize;
    reducers[idx]
}

// ---- mapper -------------------------------------------------------------------

/// The mapper state machine (WordCount map + combine + shuffle).
#[derive(Clone, Debug)]
pub struct MapperMachine {
    node: NodeId,
    reducers: Vec<NodeId>,
    /// If set, the mapper is corrupt: it injects `(word, extra_count)` bogus
    /// occurrences into every split it processes (§7.3's misbehaving Map-3).
    pub corrupt: Option<(String, i64)>,
}

impl MapperMachine {
    /// An honest mapper.
    pub fn new(node: NodeId, reducers: Vec<NodeId>) -> MapperMachine {
        MapperMachine {
            node,
            reducers,
            corrupt: None,
        }
    }

    /// A corrupt mapper injecting `extra` bogus occurrences of `word`.
    pub fn corrupt(node: NodeId, reducers: Vec<NodeId>, word: &str, extra: i64) -> MapperMachine {
        MapperMachine {
            node,
            reducers,
            corrupt: Some((word.to_string(), extra)),
        }
    }

    fn process_split(&self, input: &Tuple) -> Vec<SmOutput> {
        let mut out = Vec::new();
        let (Some(split), Some(text)) = (input.int_arg(0), input.str_arg(1)) else {
            return out;
        };
        let text = text.to_string();

        // Map phase: one mapOut per word occurrence, provenance = the split.
        let mut per_word: BTreeMap<String, Vec<Tuple>> = BTreeMap::new();
        for (offset, word) in text.split_whitespace().enumerate() {
            let word = word.to_lowercase();
            let m = map_out(self.node, split, &word, offset as i64);
            out.push(SmOutput::Derive {
                tuple: m.clone(),
                rule: "map".into(),
                body: vec![input.clone()],
            });
            per_word.entry(word).or_default().push(m);
        }
        // A corrupt mapper fabricates additional occurrences.
        if let Some((word, extra)) = &self.corrupt {
            let word = word.to_lowercase();
            let start = per_word.get(&word).map(|v| v.len()).unwrap_or(0) as i64;
            for k in 0..*extra {
                let m = map_out(self.node, split, &word, 1_000_000 + start + k);
                out.push(SmOutput::Derive {
                    tuple: m.clone(),
                    rule: "map".into(),
                    body: vec![input.clone()],
                });
                per_word.entry(word.clone()).or_default().push(m);
            }
        }

        // Combine + shuffle phases.
        for (word, occurrences) in per_word {
            let count = occurrences.len() as i64;
            let c = combine_out(self.node, split, &word, count);
            out.push(SmOutput::Derive {
                tuple: c.clone(),
                rule: "combine".into(),
                body: occurrences,
            });
            let reducer = reducer_for(&word, &self.reducers);
            let s = shuffle(reducer, &word, count, self.node, split);
            out.push(SmOutput::Derive {
                tuple: s.clone(),
                rule: "shuffle".into(),
                body: vec![c],
            });
            out.push(SmOutput::Send {
                to: reducer,
                delta: TupleDelta::plus(s),
            });
        }
        out
    }
}

impl StateMachine for MapperMachine {
    fn handle(&mut self, input: SmInput) -> Vec<SmOutput> {
        match input {
            SmInput::InsertBase(tuple) if tuple.relation == "mapInput" => self.process_split(&tuple),
            _ => Vec::new(),
        }
    }

    fn fresh(&self) -> Box<dyn StateMachine> {
        Box::new(MapperMachine {
            node: self.node,
            reducers: self.reducers.clone(),
            corrupt: None,
        })
    }

    fn current_tuples(&self) -> Vec<Tuple> {
        Vec::new()
    }

    /// Mappers are stateless between splits (`reducers` / `corrupt` are
    /// configuration, not state), so the snapshot is empty.
    fn snapshot(&self) -> Option<Vec<u8>> {
        Some(Vec::new())
    }

    fn restore(&self, snapshot: &[u8]) -> Result<Box<dyn StateMachine>, String> {
        if !snapshot.is_empty() {
            return Err("mapper snapshots are empty".into());
        }
        Ok(self.fresh())
    }

    fn name(&self) -> String {
        format!("mapper@{}", self.node)
    }
}

// ---- reducer ------------------------------------------------------------------

/// The reducer state machine: sums the shuffled counts per word.
#[derive(Clone, Debug, Default)]
pub struct ReducerMachine {
    node: NodeId,
    /// Shuffled tuples received so far, per word.
    received: BTreeMap<String, Vec<Tuple>>,
    /// Current totals per word.
    totals: BTreeMap<String, i64>,
}

impl ReducerMachine {
    /// Create a reducer.
    pub fn new(node: NodeId) -> ReducerMachine {
        ReducerMachine {
            node,
            received: BTreeMap::new(),
            totals: BTreeMap::new(),
        }
    }
}

impl StateMachine for ReducerMachine {
    fn handle(&mut self, input: SmInput) -> Vec<SmOutput> {
        let mut out = Vec::new();
        let SmInput::Receive { delta, .. } = input else {
            return out;
        };
        if delta.polarity != Polarity::Plus || delta.tuple.relation != "shuffle" {
            return out;
        }
        let tuple = delta.tuple;
        let (Some(word), Some(count)) = (tuple.str_arg(0).map(|s| s.to_string()), tuple.int_arg(1)) else {
            return out;
        };
        let old_total = self.totals.get(&word).copied().unwrap_or(0);
        if old_total > 0 {
            let old = reduce_out(self.node, &word, old_total);
            out.push(SmOutput::Underive {
                tuple: old,
                rule: "reduce".into(),
                body: self.received.get(&word).cloned().unwrap_or_default(),
            });
        }
        self.received.entry(word.clone()).or_default().push(tuple);
        let new_total = old_total + count;
        self.totals.insert(word.clone(), new_total);
        let new = reduce_out(self.node, &word, new_total);
        out.push(SmOutput::Derive {
            tuple: new,
            rule: "reduce".into(),
            body: self.received.get(&word).cloned().unwrap_or_default(),
        });
        out
    }

    fn fresh(&self) -> Box<dyn StateMachine> {
        Box::new(ReducerMachine::new(self.node))
    }

    fn current_tuples(&self) -> Vec<Tuple> {
        self.totals
            .iter()
            .map(|(word, total)| reduce_out(self.node, word, *total))
            .collect()
    }

    /// The snapshot covers the received shuffle tuples and the running
    /// per-word totals.
    fn snapshot(&self) -> Option<Vec<u8>> {
        let mut w = snp_datalog::SnapshotWriter::new();
        w.u64(self.received.len() as u64);
        for (word, tuples) in &self.received {
            w.str(word);
            w.u64(tuples.len() as u64);
            for tuple in tuples {
                w.tuple(tuple);
            }
        }
        w.u64(self.totals.len() as u64);
        for (word, total) in &self.totals {
            w.str(word);
            w.i64(*total);
        }
        Some(w.finish())
    }

    fn restore(&self, snapshot: &[u8]) -> Result<Box<dyn StateMachine>, String> {
        let mut r = snp_datalog::SnapshotReader::new(snapshot);
        let mut machine = ReducerMachine::new(self.node);
        (|| {
            let words = r.read_len()?;
            for _ in 0..words {
                let word = r.str()?;
                let count = r.read_len()?;
                let mut tuples = Vec::with_capacity(count);
                for _ in 0..count {
                    tuples.push(r.tuple()?);
                }
                machine.received.insert(word, tuples);
            }
            let totals = r.read_len()?;
            for _ in 0..totals {
                let word = r.str()?;
                let total = r.i64()?;
                machine.totals.insert(word, total);
            }
            r.expect_exhausted()
        })()
        .map_err(|e| e.to_string())?;
        Ok(Box::new(machine))
    }

    fn name(&self) -> String {
        format!("reducer@{}", self.node)
    }
}

// ---- corpus + scenario ----------------------------------------------------------

/// Generate a synthetic text corpus: `splits` splits of `words_per_split`
/// words drawn from a small vocabulary, with the word "squirrel" appearing
/// rarely (so that a large count is suspicious, as in §7.3).
pub fn generate_corpus(splits: usize, words_per_split: usize, seed: u64) -> Vec<String> {
    const VOCAB: &[&str] = &[
        "the",
        "quick",
        "brown",
        "fox",
        "jumps",
        "over",
        "lazy",
        "dog",
        "network",
        "provenance",
        "secure",
        "system",
        "node",
        "route",
        "query",
        "log",
        "replay",
        "evidence",
        "graph",
        "tuple",
    ];
    let mut rng = DetRng::new(seed);
    (0..splits)
        .map(|_| {
            let mut words = Vec::with_capacity(words_per_split);
            for _ in 0..words_per_split {
                if rng.chance(0.002) {
                    words.push("squirrel");
                } else {
                    // Lossless: `next_below(len)` is below `len`.
                    #[allow(clippy::cast_possible_truncation)]
                    words.push(VOCAB[rng.next_below(VOCAB.len() as u64) as usize]);
                }
            }
            words.join(" ")
        })
        .collect()
}

/// Parameters of a MapReduce job (Hadoop-Small: 20 mappers / 10 reducers).
#[derive(Clone, Copy, Debug)]
pub struct MapReduceScenario {
    /// Number of mapper nodes.
    pub mappers: u64,
    /// Number of reducer nodes.
    pub reducers: u64,
    /// Number of input splits (one per mapper task in the paper).
    pub splits: usize,
    /// Words per split.
    pub words_per_split: usize,
}

impl MapReduceScenario {
    /// A scaled-down Hadoop-Small (20 mappers, 10 reducers).
    pub fn small() -> MapReduceScenario {
        MapReduceScenario {
            mappers: 20,
            reducers: 10,
            splits: 20,
            words_per_split: 400,
        }
    }

    /// A scaled-down Hadoop-Large (more splits per mapper).
    pub fn large() -> MapReduceScenario {
        MapReduceScenario {
            mappers: 20,
            reducers: 10,
            splits: 60,
            words_per_split: 800,
        }
    }

    /// Mapper node ids (1..=mappers).
    pub fn mapper_ids(&self) -> Vec<NodeId> {
        (1..=self.mappers).map(NodeId).collect()
    }

    /// Reducer node ids (mappers+1 ..= mappers+reducers).
    pub fn reducer_ids(&self) -> Vec<NodeId> {
        (self.mappers + 1..=self.mappers + self.reducers).map(NodeId).collect()
    }

    /// The deployable job.  `corrupt_mapper` optionally makes one mapper
    /// inject `extra_squirrels` bogus occurrences of "squirrel" per split.
    pub fn job(&self, corrupt_mapper: Option<NodeId>, extra_squirrels: i64) -> MapReduceJob {
        MapReduceJob {
            scenario: *self,
            corrupt_mapper,
            extra_squirrels,
        }
    }

    /// Build the job into a ready-to-run deployment.
    pub fn build(&self, secure: bool, seed: u64, corrupt_mapper: Option<NodeId>, extra_squirrels: i64) -> Deployment {
        Deployment::builder()
            .seed(seed)
            .secure(secure)
            .app(self.job(corrupt_mapper, extra_squirrels))
            .build()
    }
}

/// The deployable WordCount job: mapper and reducer machines plus the
/// synthetic-corpus workload of a [`MapReduceScenario`].
#[derive(Debug)]
pub struct MapReduceJob {
    /// The job parameters.
    pub scenario: MapReduceScenario,
    /// If set, this mapper is corrupt.
    pub corrupt_mapper: Option<NodeId>,
    /// Bogus "squirrel" occurrences the corrupt mapper injects per split.
    pub extra_squirrels: i64,
}

impl Application for MapReduceJob {
    fn name(&self) -> String {
        format!("mapreduce-{}x{}", self.scenario.mappers, self.scenario.reducers)
    }

    fn nodes(&self) -> Vec<NodeId> {
        let mut ids = self.scenario.mapper_ids();
        ids.extend(self.scenario.reducer_ids());
        ids
    }

    fn node(&self, id: NodeId) -> AppNode {
        // Reducer ids are the contiguous range above the mappers.
        if id.0 > self.scenario.mappers {
            return AppNode::new(Box::new(ReducerMachine::new(id)));
        }
        let reducers = self.scenario.reducer_ids();
        if self.corrupt_mapper == Some(id) {
            // `MapperMachine::fresh` drops the corruption, so replay uses the
            // honest map function.
            AppNode::new(Box::new(MapperMachine::corrupt(
                id,
                reducers,
                "squirrel",
                self.extra_squirrels,
            )))
        } else {
            AppNode::new(Box::new(MapperMachine::new(id, reducers)))
        }
    }

    fn workload(&self, seed: u64) -> Vec<WorkloadEvent> {
        // Assign splits to mappers round-robin and schedule the inputs.
        let corpus = generate_corpus(self.scenario.splits, self.scenario.words_per_split, seed);
        let mapper_ids = self.scenario.mapper_ids();
        corpus
            .iter()
            .enumerate()
            .map(|(i, text)| {
                let mapper = mapper_ids[i % mapper_ids.len()];
                WorkloadEvent::insert(
                    SimTime::from_millis(10 + i as u64),
                    mapper,
                    map_input(mapper, i as i64, text),
                )
            })
            .collect()
    }

    fn program(&self) -> Option<String> {
        Some(MAPREDUCE_PROGRAM.into())
    }
}

#[cfg(test)]
mod tests {

    #[test]
    fn declared_program_is_lint_clean_against_the_workload() {
        use snp_core::deploy::WorkloadOp;
        let app = tiny().job(None, 0);
        let rules = snp_datalog::parser::parse_program(MAPREDUCE_PROGRAM).expect("program parses");
        let facts: Vec<Tuple> = app
            .workload(7)
            .into_iter()
            .map(|e| match e.op {
                WorkloadOp::Insert(t) | WorkloadOp::Delete(t) => t,
            })
            .collect();
        for d in snp_datalog::analyze_with_facts(&rules, &facts) {
            assert!(d.severity < snp_datalog::Severity::Warning, "{}", d.render());
        }
    }

    use super::*;

    fn tiny() -> MapReduceScenario {
        MapReduceScenario {
            mappers: 4,
            reducers: 2,
            splits: 4,
            words_per_split: 60,
        }
    }

    #[test]
    fn word_counts_are_correct() {
        let scenario = tiny();
        let mut tb = scenario.build(true, 5, None, 0);
        tb.run_until(SimTime::from_secs(20));
        // Recompute the expected counts directly from the corpus.
        let corpus = generate_corpus(scenario.splits, scenario.words_per_split, 5);
        let mut expected: BTreeMap<String, i64> = BTreeMap::new();
        for text in &corpus {
            for w in text.split_whitespace() {
                *expected.entry(w.to_lowercase()).or_default() += 1;
            }
        }
        let reducers = scenario.reducer_ids();
        for (word, count) in expected {
            let reducer = reducer_for(&word, &reducers);
            let expected_tuple = reduce_out(reducer, &word, count);
            assert!(
                tb.handles[&reducer].with(|n| n.has_tuple(&expected_tuple)),
                "reducer {reducer} must hold {expected_tuple}"
            );
        }
    }

    #[test]
    fn corrupt_mapper_inflates_count_and_is_implicated() {
        let scenario = tiny();
        let corrupt = NodeId(3);
        let mut tb = scenario.build(true, 5, Some(corrupt), 50);
        tb.run_until(SimTime::from_secs(20));

        let reducers = scenario.reducer_ids();
        let reducer = reducer_for("squirrel", &reducers);
        // Find the (inflated) squirrel total the reducer currently holds.
        let total = tb.handles[&reducer]
            .with(|n| n.current_tuples())
            .into_iter()
            .find(|t| t.relation == "reduceOut" && t.str_arg(0) == Some("squirrel"))
            .and_then(|t| t.int_arg(1))
            .expect("squirrel total present");
        assert!(total >= 50, "corrupt mapper must inflate the count (got {total})");

        let result = tb
            .querier
            .why_exists(reduce_out(reducer, "squirrel", total))
            .at(reducer)
            .run();
        assert!(result.root.is_some());
        assert!(
            result.implicated_nodes().contains(&corrupt) || result.suspect_nodes().contains(&corrupt),
            "the corrupt mapper must be implicated: implicated={:?} suspects={:?}",
            result.implicated_nodes(),
            result.suspect_nodes()
        );
        // No honest mapper may be implicated (accuracy).
        for m in scenario.mapper_ids() {
            if m != corrupt {
                assert!(!result.implicated_nodes().contains(&m), "honest mapper {m} implicated");
            }
        }
    }

    #[test]
    fn clean_job_explanation_is_legitimate_and_spans_the_pipeline() {
        let scenario = tiny();
        let mut tb = scenario.build(true, 5, None, 0);
        tb.run_until(SimTime::from_secs(20));
        let reducers = scenario.reducer_ids();
        let reducer = reducer_for("provenance", &reducers);
        let total = tb.handles[&reducer]
            .with(|n| n.current_tuples())
            .into_iter()
            .find(|t| t.relation == "reduceOut" && t.str_arg(0) == Some("provenance"))
            .and_then(|t| t.int_arg(1))
            .expect("the word appears somewhere in the corpus");
        let result = tb
            .querier
            .why_exists(reduce_out(reducer, "provenance", total))
            .at(reducer)
            .run();
        assert!(result.implicated_nodes().is_empty());
        // The explanation must include mapInput tuples on mapper nodes.
        let has_map_input = result.traversal.as_ref().unwrap().depths.keys().any(|id| {
            result
                .graph
                .vertex(id)
                .map(|v| v.kind.tuple().relation == "mapInput")
                .unwrap_or(false)
        });
        assert!(has_map_input, "provenance must reach the input splits");
    }

    #[test]
    fn corpus_is_deterministic_and_rarely_mentions_squirrels() {
        let a = generate_corpus(5, 100, 1);
        let b = generate_corpus(5, 100, 1);
        assert_eq!(a, b);
        let squirrels: usize = a.iter().map(|t| t.matches("squirrel").count()).sum();
        assert!(squirrels < 10, "squirrel must be rare (got {squirrels})");
    }

    #[test]
    fn reducer_assignment_is_stable_and_covers_all_reducers() {
        let reducers: Vec<NodeId> = (10..14).map(NodeId).collect();
        let words = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"];
        let used: std::collections::BTreeSet<NodeId> = words.iter().map(|w| reducer_for(w, &reducers)).collect();
        assert!(used.len() > 1, "hash partitioning should spread words");
        assert_eq!(reducer_for("x", &reducers), reducer_for("x", &reducers));
    }
}

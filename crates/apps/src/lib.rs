//! # snp-apps — example applications instrumented with SNooPy
//!
//! Section 6 of the paper applies SNooPy to three applications, each using a
//! different provenance-extraction method.  This crate rebuilds all three (on
//! the simulated substrate) plus the MinCost routing example of §3.3:
//!
//! * [`mincost`] — the five-router MinCost example (Figure 2), written in the
//!   rule language and evaluated by the `snp-datalog` engine (inferred
//!   provenance).
//! * [`chord`] — a Chord DHT (successors, fingers, iterative lookups,
//!   stabilization/keep-alive traffic) written directly against the
//!   deterministic state-machine API; provenance is inferred from its tuple
//!   operations.  Includes the Eclipse-attack scenario of §7.2.
//! * [`mapreduce`] — a mini MapReduce (splits → map → combine → shuffle →
//!   reduce) with *reported* provenance at key-value granularity (§6.2), a
//!   synthetic text corpus generator, and the corrupt-mapper scenario behind
//!   the Hadoop-Squirrel query (Figure 4).
//! * [`bgp`] — a path-vector BGP engine with Gao–Rexford-style export
//!   policies standing in for Quagga, driven through an external
//!   specification proxy (§6.3); includes the BadGadget and
//!   disappearing-route scenarios and a RouteViews-like update generator.
//!
//! * [`fleet`] — the single-router real-fleet demo driven by
//!   `examples/real_fleet.rs`: operator-injected links audited end-to-end
//!   over the TCP transport and the durable segment store.
//!
//! Every app in this crate implements [`snp_core::Application`], so scenarios
//! compose through [`snp_core::DeploymentBuilder`].

#![forbid(unsafe_code)]
// Unit tests may unwrap: a panic is the assertion.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]
#![warn(missing_docs)]

pub mod bgp;
pub mod chord;
pub mod fleet;
pub mod mapreduce;
pub mod mincost;

//! Shared scaffolding: SNooPy nodes + simulator + querier in one bundle.

use snp_core::node::{SnoopyHandle, SnoopyNode, OPERATOR};
use snp_core::query::Querier;
use snp_core::wire::SnoopyWire;
use snp_core::ByzantineConfig;
use snp_crypto::keys::{KeyRegistry, NodeId};
use snp_datalog::{SmInput, StateMachine, Tuple};
use snp_sim::{NetworkConfig, SimTime, Simulator};
use std::collections::BTreeMap;

/// A complete experimental setup: simulator, node handles and a querier.
pub struct Testbed {
    /// The discrete-event simulator driving the run.
    pub sim: Simulator<SnoopyWire>,
    /// Handles to every node, for inspection and `retrieve`.
    pub handles: BTreeMap<NodeId, SnoopyHandle>,
    /// The querier ("Alice").
    pub querier: Querier,
    /// Whether nodes run with SNP enabled (false = baseline configuration).
    pub secure: bool,
    registry: KeyRegistry,
    t_prop_micros: u64,
}

impl Testbed {
    /// Create a testbed.  `secure = false` builds the baseline configuration
    /// used as the denominator in Figures 5 and 9.
    pub fn new(config: NetworkConfig, seed: u64, max_nodes: u64, secure: bool) -> Testbed {
        let (_, _, registry) = KeyRegistry::deployment(max_nodes + 1);
        let t_prop_micros = config.t_prop.as_micros();
        Testbed {
            sim: Simulator::new(config, seed),
            handles: BTreeMap::new(),
            querier: Querier::new(registry.clone(), t_prop_micros),
            secure,
            registry,
            t_prop_micros,
        }
    }

    /// Add a node running `app`; `expected` is the machine the querier will
    /// replay with (pass a fresh copy of the *correct* machine even when the
    /// node itself runs a corrupted one).
    pub fn add_node(&mut self, id: NodeId, app: Box<dyn StateMachine>, expected: Box<dyn StateMachine>) -> SnoopyHandle {
        let node = if self.secure {
            SnoopyNode::new(id, app, self.registry.clone(), self.t_prop_micros)
        } else {
            SnoopyNode::baseline(id, app)
        };
        let handle = SnoopyHandle::new(node);
        self.sim.add_node(id, Box::new(handle.clone()));
        self.querier.register(handle.clone(), expected);
        self.handles.insert(id, handle.clone());
        handle
    }

    /// Configure Byzantine behaviour on a node.
    pub fn set_byzantine(&mut self, id: NodeId, config: ByzantineConfig) {
        if let Some(handle) = self.handles.get(&id) {
            handle.with(|n| n.set_byzantine(config));
        }
    }

    /// Charge `bytes` of proxy re-encoding overhead per outgoing message on a
    /// node (the Quagga proxy of §6.3).
    pub fn set_proxy_overhead(&mut self, id: NodeId, bytes: usize) {
        if let Some(handle) = self.handles.get(&id) {
            handle.with(|n| n.proxy_overhead_per_message = bytes);
        }
    }

    /// Enable periodic checkpoints on every node.
    pub fn enable_checkpoints(&mut self, interval_micros: u64) {
        for handle in self.handles.values() {
            handle.with(|n| n.set_checkpoint_interval(interval_micros));
        }
    }

    /// Schedule the insertion of a base tuple at `at` on `node`.
    pub fn insert_at(&mut self, at: SimTime, node: NodeId, tuple: Tuple) {
        self.sim.inject_message(at, OPERATOR, node, SnoopyWire::Operator { input: SmInput::InsertBase(tuple) });
    }

    /// Schedule the deletion of a base tuple at `at` on `node`.
    pub fn delete_at(&mut self, at: SimTime, node: NodeId, tuple: Tuple) {
        self.sim.inject_message(at, OPERATOR, node, SnoopyWire::Operator { input: SmInput::DeleteBase(tuple) });
    }

    /// Run the simulation until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.sim.run_until(deadline);
        // Past runs invalidate cached audits.
        self.querier.clear_cache();
    }

    /// Sum of all nodes' SNP-level traffic counters.
    pub fn total_traffic(&self) -> snp_core::node::NodeTraffic {
        let mut total = snp_core::node::NodeTraffic::default();
        for handle in self.handles.values() {
            total.merge(&handle.traffic());
        }
        total
    }

    /// Sum of all nodes' log sizes in bytes.
    pub fn total_log_bytes(&self) -> u64 {
        self.handles.values().map(|h| h.with(|n| n.log_stats().total())).sum()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.handles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_datalog::{Atom, Engine, Rule, RuleSet, Term, Value};

    fn rules() -> RuleSet {
        RuleSet::new(vec![Rule::standard(
            "R",
            Atom::new("reach", Term::var("Y"), vec![Term::var("X")]),
            vec![Atom::new("link", Term::var("X"), vec![Term::var("Y")])],
            vec![],
        )])
        .unwrap()
    }

    #[test]
    fn testbed_wires_nodes_and_tracks_traffic() {
        let mut tb = Testbed::new(NetworkConfig::default(), 3, 4, true);
        for i in 1..=2u64 {
            tb.add_node(NodeId(i), Box::new(Engine::new(NodeId(i), rules())), Box::new(Engine::new(NodeId(i), rules())));
        }
        tb.insert_at(SimTime::from_millis(5), NodeId(1), Tuple::new("link", NodeId(1), vec![Value::node(2u64)]));
        tb.run_until(SimTime::from_secs(2));
        assert_eq!(tb.node_count(), 2);
        assert!(tb.total_traffic().total() > 0);
        assert!(tb.total_log_bytes() > 0);
    }

    #[test]
    fn baseline_testbed_has_zero_log() {
        let mut tb = Testbed::new(NetworkConfig::default(), 3, 4, false);
        for i in 1..=2u64 {
            tb.add_node(NodeId(i), Box::new(Engine::new(NodeId(i), rules())), Box::new(Engine::new(NodeId(i), rules())));
        }
        tb.insert_at(SimTime::from_millis(5), NodeId(1), Tuple::new("link", NodeId(1), vec![Value::node(2u64)]));
        tb.run_until(SimTime::from_secs(2));
        assert_eq!(tb.total_log_bytes(), 0);
        assert!(tb.total_traffic().total() > 0);
    }
}

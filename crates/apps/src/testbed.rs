//! Legacy shim: [`Testbed`] is now [`snp_core::Deployment`].
//!
//! The shared scaffolding that used to live here — SNooPy nodes + simulator +
//! querier in one bundle — moved into `snp-core` as the unified deployment
//! API ([`snp_core::Deployment`], [`snp_core::DeploymentBuilder`] and the
//! [`snp_core::Application`] trait).  This module keeps the old name alive
//! for one release; new code should use `Deployment::builder()`.

/// The old name of [`snp_core::Deployment`].
#[deprecated(
    since = "0.2.0",
    note = "use `snp_core::Deployment` (via `Deployment::builder()`) instead"
)]
pub type Testbed = snp_core::Deployment;

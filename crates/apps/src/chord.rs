//! A Chord DHT on the SNP substrate (§6.1, §7.2's Chord-Lookup / Chord-Finger
//! queries and the Eclipse-attack scenario).
//!
//! The paper runs a declarative Chord whose provenance is inferred
//! automatically.  Here the Chord logic is written directly against the
//! deterministic state-machine API (the restricted rule language of
//! `snp-datalog` would make the ring arithmetic awkward), and provenance is
//! inferred from its tuple operations in the same way: every derivation
//! reports the tuples it used.
//!
//! The ring is static (a stable ring is installed as base tuples), and the
//! runtime traffic mirrors the paper's setup: periodic stabilization probes,
//! keep-alives and finger probes (all answered by the peer), plus iterative
//! key lookups forwarded through fingers.

use snp_core::deploy::{AppNode, Application, Deployment, WorkloadEvent};
use snp_crypto::keys::NodeId;
use snp_datalog::{AbsenceWitness, Polarity, SmInput, SmOutput, StateMachine, Tuple, TupleDelta, Value};
use snp_sim::SimTime;
use std::collections::BTreeSet;

/// Number of bits in the identifier space (small, to keep finger tables short
/// but non-trivial).
pub const ID_BITS: u32 = 16;
/// Size of the identifier space.
pub const ID_SPACE: u64 = 1 << ID_BITS;

/// The Chord identifier of a node (derived from its NodeId, as in a real
/// deployment where it would be a hash of the IP address).
pub fn chord_id(node: NodeId) -> u64 {
    snp_crypto::hash(&node.to_bytes()).to_u64() % ID_SPACE
}

/// The Chord identifier of a key (hash of the key string).
pub fn key_id(key: &str) -> u64 {
    snp_crypto::hash(key.as_bytes()).to_u64() % ID_SPACE
}

/// Whether `x` lies in the half-open ring interval `(a, b]`.
pub fn in_interval(x: u64, a: u64, b: u64) -> bool {
    if a == b {
        true
    } else if a < b {
        x > a && x <= b
    } else {
        x > a || x <= b
    }
}

/// The declarative companion of the Chord machine: the lookup protocol as
/// NDlog rules, statically analyzable and cross-checked against the
/// workload's base tuples by `DeploymentBuilder`.
///
/// C1 is the answer rule — a lookup whose key falls inside the node's
/// `(me, succ]` arc is resolved by its successor and the result is shipped
/// back to the origin.  C2 is the forwarding step: for any other key the
/// machine routes the request onward (through the finger table when
/// possible, to the successor otherwise), a choice the `maybe` rule leaves
/// to the implementation.  The ring's modular wraparound arc is not
/// expressible in plain comparisons and lives only in the machine.
pub const CHORD_PROGRAM: &str = r#"
    # C1: a key inside (me, succ] is owned by the successor
    C1 lookupResult(@O, R, K, S, SI) :- lookup(@N, K, O, R), me(@N, MI), succ(@N, SI, S), K > MI, K <= SI.
    # C2: any other lookup may be forwarded around the ring
    C2 lookup(@S, K, O, R)     maybe :- lookup(@N, K, O, R), succ(@N, SI, S).
"#;

// ---- tuple constructors -----------------------------------------------------

/// `me(@n, id)` — the node's own identifier (base tuple).
pub fn me(node: NodeId, id: u64) -> Tuple {
    Tuple::new("me", node, vec![Value::Int(id as i64)])
}

/// `succ(@n, succId, succNode)` — the node's successor (base tuple).
pub fn succ(node: NodeId, succ_id: u64, succ_node: NodeId) -> Tuple {
    Tuple::new("succ", node, vec![Value::Int(succ_id as i64), Value::Node(succ_node)])
}

/// `finger(@n, idx, targetId, targetNode)` — a finger-table entry (base tuple).
pub fn finger(node: NodeId, idx: u32, target_id: u64, target: NodeId) -> Tuple {
    Tuple::new(
        "finger",
        node,
        vec![
            Value::Int(idx as i64),
            Value::Int(target_id as i64),
            Value::Node(target),
        ],
    )
}

/// `lookup(@n, keyId, origin, reqId)` — a lookup request (base tuple at the
/// origin, believed tuple when forwarded).
pub fn lookup(node: NodeId, key: u64, origin: NodeId, req: u64) -> Tuple {
    Tuple::new(
        "lookup",
        node,
        vec![Value::Int(key as i64), Value::Node(origin), Value::Int(req as i64)],
    )
}

/// `lookupResult(@origin, reqId, keyId, owner, ownerId)` — the answer.
pub fn lookup_result(origin: NodeId, req: u64, key: u64, owner: NodeId, owner_id: u64) -> Tuple {
    Tuple::new(
        "lookupResult",
        origin,
        vec![
            Value::Int(req as i64),
            Value::Int(key as i64),
            Value::Node(owner),
            Value::Int(owner_id as i64),
        ],
    )
}

/// `stabTick(@n, seq)` / `keepTick(@n, seq)` / `fixTick(@n, seq)` — periodic
/// maintenance triggers injected by the workload driver.
pub fn tick(kind: &str, node: NodeId, seq: u64) -> Tuple {
    Tuple::new(kind, node, vec![Value::Int(seq as i64)])
}

fn probe(kind: &str, to: NodeId, from: NodeId, seq: u64) -> Tuple {
    Tuple::new(kind, to, vec![Value::Node(from), Value::Int(seq as i64)])
}

fn reply(kind: &str, to: NodeId, from: NodeId, seq: u64) -> Tuple {
    Tuple::new(kind, to, vec![Value::Node(from), Value::Int(seq as i64)])
}

// ---- the Chord state machine -------------------------------------------------

/// The deterministic Chord node machine.
#[derive(Clone, Debug)]
pub struct ChordMachine {
    node: NodeId,
    /// When true the node mounts an Eclipse attack: every lookup it handles
    /// is answered with itself as the owner (§7.2/§7.3).
    pub eclipse: bool,
    tuples: BTreeSet<Tuple>,
}

impl ChordMachine {
    /// Create an honest Chord machine.
    pub fn new(node: NodeId) -> ChordMachine {
        ChordMachine {
            node,
            eclipse: false,
            tuples: BTreeSet::new(),
        }
    }

    /// Create an Eclipse-attacking machine.
    pub fn eclipse(node: NodeId) -> ChordMachine {
        ChordMachine {
            node,
            eclipse: true,
            tuples: BTreeSet::new(),
        }
    }

    fn my_id(&self) -> Option<u64> {
        self.tuples
            .iter()
            .find(|t| t.relation == "me")
            .and_then(|t| t.int_arg(0))
            .map(|v| v as u64)
    }

    fn successor(&self) -> Option<(u64, NodeId)> {
        self.tuples
            .iter()
            .find(|t| t.relation == "succ")
            .and_then(|t| Some((t.int_arg(0)? as u64, t.node_arg(1)?)))
    }

    fn succ_tuple(&self) -> Option<Tuple> {
        self.tuples.iter().find(|t| t.relation == "succ").cloned()
    }

    fn me_tuple(&self) -> Option<Tuple> {
        self.tuples.iter().find(|t| t.relation == "me").cloned()
    }

    fn fingers(&self) -> Vec<(u64, NodeId, Tuple)> {
        self.tuples
            .iter()
            .filter(|t| t.relation == "finger")
            .filter_map(|t| Some((t.int_arg(1)? as u64, t.node_arg(2)?, t.clone())))
            .collect()
    }

    /// The closest finger preceding `key` (Chord's routing step), together
    /// with the finger tuple used (for provenance).
    fn closest_preceding(&self, key: u64) -> Option<(NodeId, Tuple)> {
        let my_id = self.my_id()?;
        let mut best: Option<(u64, NodeId, Tuple)> = None;
        for (fid, fnode, ftuple) in self.fingers() {
            if fnode == self.node {
                continue;
            }
            if in_interval(fid, my_id, key.wrapping_sub(1) % ID_SPACE) {
                let better = match &best {
                    None => true,
                    Some((bid, _, _)) => in_interval(fid, *bid, key.wrapping_sub(1) % ID_SPACE),
                };
                if better {
                    best = Some((fid, fnode, ftuple));
                }
            }
        }
        best.map(|(_, n, t)| (n, t)).or_else(|| {
            let (sid, snode) = self.successor()?;
            let _ = sid;
            if snode == self.node {
                None
            } else {
                Some((snode, self.succ_tuple()?))
            }
        })
    }

    /// Handle a lookup for `key` from `origin` (request id `req`), triggered
    /// by `trigger` (the lookup tuple).  Produces the derivation outputs.
    fn route_lookup(&self, trigger: &Tuple, key: u64, origin: NodeId, req: u64) -> Vec<SmOutput> {
        let mut out = Vec::new();
        let (Some(my_id), Some((succ_id, succ_node))) = (self.my_id(), self.successor()) else {
            return out;
        };
        if self.eclipse {
            // The attacker claims to own every key it hears about.
            let result = lookup_result(origin, req, key, self.node, my_id);
            out.push(SmOutput::Derive {
                tuple: result.clone(),
                rule: "eclipse".into(),
                body: vec![trigger.clone(), self.me_tuple().expect("me tuple present")],
            });
            if origin != self.node {
                out.push(SmOutput::Send {
                    to: origin,
                    delta: TupleDelta::plus(result),
                });
            }
            return out;
        }
        if in_interval(key, my_id, succ_id) {
            // The key is owned by our successor.
            let result = lookup_result(origin, req, key, succ_node, succ_id);
            let body = vec![trigger.clone(), self.succ_tuple().expect("succ tuple present")];
            out.push(SmOutput::Derive {
                tuple: result.clone(),
                rule: "chord-resolve".into(),
                body,
            });
            if origin != self.node {
                out.push(SmOutput::Send {
                    to: origin,
                    delta: TupleDelta::plus(result),
                });
            }
        } else if let Some((next, finger_tuple)) = self.closest_preceding(key) {
            let forwarded = lookup(next, key, origin, req);
            out.push(SmOutput::Derive {
                tuple: forwarded.clone(),
                rule: "chord-forward".into(),
                body: vec![trigger.clone(), finger_tuple],
            });
            out.push(SmOutput::Send {
                to: next,
                delta: TupleDelta::plus(forwarded),
            });
        }
        out
    }

    // ----- negative provenance (why_absent) --------------------------------

    /// `me` / `succ` read from an externally supplied tuple state.
    fn ring_state_in(node: NodeId, present: &[Tuple]) -> Option<(u64, u64, NodeId)> {
        let my_id = present
            .iter()
            .find(|t| t.relation == "me" && t.location == node)
            .and_then(|t| t.int_arg(0))? as u64;
        let succ = present
            .iter()
            .find(|t| t.relation == "succ" && t.location == node)
            .and_then(|t| Some((t.int_arg(0)? as u64, t.node_arg(1)?)))?;
        Some((my_id, succ.0, succ.1))
    }

    /// The closest preceding finger for `key`, computed from an externally
    /// supplied tuple state (mirrors [`ChordMachine::closest_preceding`]).
    fn closest_preceding_in(node: NodeId, present: &[Tuple], key: u64) -> Option<NodeId> {
        let (my_id, _, succ_node) = Self::ring_state_in(node, present)?;
        let mut best: Option<(u64, NodeId)> = None;
        for t in present {
            if t.relation != "finger" || t.location != node {
                continue;
            }
            let (Some(fid), Some(fnode)) = (t.int_arg(1).map(|v| v as u64), t.node_arg(2)) else {
                continue;
            };
            if fnode == node {
                continue;
            }
            if in_interval(fid, my_id, key.wrapping_sub(1) % ID_SPACE) {
                let better = match &best {
                    None => true,
                    Some((bid, _)) => in_interval(fid, *bid, key.wrapping_sub(1) % ID_SPACE),
                };
                if better {
                    best = Some((fid, fnode));
                }
            }
        }
        best.map(|(_, n)| n)
            .or(if succ_node == node { None } else { Some(succ_node) })
    }

    /// The lookup-request pattern corresponding to a `lookupResult` pattern,
    /// homed at `node` (wildcards are preserved).
    fn lookup_pattern_for(pattern: &Tuple, node: NodeId) -> Option<Tuple> {
        let key = pattern.args.get(1)?.clone();
        let req = pattern.args.first()?.clone();
        Some(Tuple::new(
            "lookup",
            node,
            vec![key, Value::Node(pattern.location), req],
        ))
    }

    /// Why does `origin` have no `lookupResult` matching the pattern?
    /// Asked of the origin itself and of every candidate resolver.
    fn absent_lookup_result(&self, pattern: &Tuple, present: &[Tuple], peers: &[NodeId]) -> Vec<AbsenceWitness> {
        let Some(lookup_pat) = Self::lookup_pattern_for(pattern, self.node) else {
            return Vec::new();
        };
        let have_lookup = present.iter().any(|t| lookup_pat.covers(t));
        if !have_lookup {
            // Whoever resolves the key must first hold the (forwarded)
            // lookup request; this node never saw it.
            let rule = if pattern.location == self.node {
                "chord-lookup"
            } else {
                "chord-resolve"
            };
            return vec![AbsenceWitness::MissingLocal {
                rule: rule.into(),
                missing: lookup_pat,
            }];
        }
        let key = match pattern.int_arg(1) {
            Some(k) => k as u64,
            None => return Vec::new(),
        };
        if let Some((my_id, succ_id, _)) = Self::ring_state_in(self.node, present) {
            if in_interval(key, my_id, succ_id) {
                // This node is the resolver and holds the lookup: the result
                // should exist (or have been sent).
                return vec![AbsenceWitness::Derivable {
                    rule: "chord-resolve".into(),
                }];
            }
        }
        if pattern.location == self.node {
            // The origin holds the request but is not the resolver: the
            // answer would arrive from whichever node owns the key — over
            // the known domain, any peer is a candidate.
            vec![AbsenceWitness::NeverReceived {
                rule: "chord-resolve".into(),
                tuple: pattern.clone(),
                senders: peers.iter().copied().filter(|p| *p != self.node).collect(),
            }]
        } else {
            // A forwarder that is not the resolver legitimately produced no
            // result of its own.
            vec![AbsenceWitness::ConstraintFailed {
                rule: "chord-resolve".into(),
            }]
        }
    }

    /// Why does this node (or the node the pattern is homed at) have no
    /// `lookup` request matching the pattern?
    fn absent_lookup(&self, pattern: &Tuple, present: &[Tuple], peers: &[NodeId]) -> Vec<AbsenceWitness> {
        let origin = pattern.node_arg(1);
        if pattern.location == self.node {
            if origin == Some(self.node) {
                // The origin inserts its own lookups as base tuples.
                return vec![AbsenceWitness::NoBaseInsertion];
            }
            // A forwarded lookup could only arrive from a node routing the
            // request; over the known domain, any peer is a candidate.
            return vec![AbsenceWitness::NeverReceived {
                rule: "chord-forward".into(),
                tuple: pattern.clone(),
                senders: peers.iter().copied().filter(|p| *p != self.node).collect(),
            }];
        }
        // Asked as a candidate forwarder: would this node have forwarded the
        // request to the pattern's home?  The same request on this node is
        // the pattern re-homed here.
        let mut own_lookup = pattern.clone();
        own_lookup.location = self.node;
        if !present.iter().any(|t| own_lookup.covers(t)) {
            // It never held the request itself.
            return vec![AbsenceWitness::MissingLocal {
                rule: "chord-forward".into(),
                missing: own_lookup,
            }];
        }
        let key = match pattern.int_arg(0) {
            Some(k) => k as u64,
            None => return Vec::new(),
        };
        match Self::closest_preceding_in(self.node, present, key) {
            Some(next) if next == pattern.location => vec![AbsenceWitness::Derivable {
                rule: "chord-forward".into(),
            }],
            _ => vec![AbsenceWitness::ConstraintFailed {
                rule: "chord-forward".into(),
            }],
        }
    }

    /// React to a tuple that has just become visible on this node.
    fn on_tuple(&self, tuple: &Tuple) -> Vec<SmOutput> {
        let mut out = Vec::new();
        match tuple.relation.as_str() {
            "lookup" => {
                if let (Some(key), Some(origin), Some(req)) = (tuple.int_arg(0), tuple.node_arg(1), tuple.int_arg(2)) {
                    out.extend(self.route_lookup(tuple, key as u64, origin, req as u64));
                }
            }
            // Periodic maintenance: each tick sends a probe to the successor
            // (stabilize / keep-alive) or to every finger (fix-fingers); each
            // probe is answered by the peer, mirroring the paper's traffic mix.
            "stabTick" | "keepTick" => {
                if let (Some(seq), Some((_, succ_node)), Some(succ_t)) =
                    (tuple.int_arg(0), self.successor(), self.succ_tuple())
                {
                    if succ_node != self.node {
                        let kind = if tuple.relation == "stabTick" {
                            "stabProbe"
                        } else {
                            "keepProbe"
                        };
                        let p = probe(kind, succ_node, self.node, seq as u64);
                        out.push(SmOutput::Derive {
                            tuple: p.clone(),
                            rule: "chord-probe".into(),
                            body: vec![tuple.clone(), succ_t],
                        });
                        out.push(SmOutput::Send {
                            to: succ_node,
                            delta: TupleDelta::plus(p),
                        });
                    }
                }
            }
            "fixTick" => {
                if let Some(seq) = tuple.int_arg(0) {
                    // Probe each *distinct* finger target once: a real Chord
                    // node has O(log N) distinct fingers, which is what gives
                    // the per-node traffic its O(log N) growth (Figure 9).
                    let mut probed = BTreeSet::new();
                    for (_, fnode, ftuple) in self.fingers() {
                        if fnode == self.node || !probed.insert(fnode) {
                            continue;
                        }
                        let p = probe("fingerProbe", fnode, self.node, seq as u64);
                        out.push(SmOutput::Derive {
                            tuple: p.clone(),
                            rule: "chord-fix".into(),
                            body: vec![tuple.clone(), ftuple],
                        });
                        out.push(SmOutput::Send {
                            to: fnode,
                            delta: TupleDelta::plus(p),
                        });
                    }
                }
            }
            "stabProbe" | "keepProbe" | "fingerProbe" => {
                if let (Some(from), Some(seq), Some(me_t)) = (tuple.node_arg(0), tuple.int_arg(1), self.me_tuple()) {
                    let kind = match tuple.relation.as_str() {
                        "stabProbe" => "stabReply",
                        "keepProbe" => "keepReply",
                        _ => "fingerReply",
                    };
                    let r = reply(kind, from, self.node, seq as u64);
                    out.push(SmOutput::Derive {
                        tuple: r.clone(),
                        rule: "chord-reply".into(),
                        body: vec![tuple.clone(), me_t],
                    });
                    out.push(SmOutput::Send {
                        to: from,
                        delta: TupleDelta::plus(r),
                    });
                }
            }
            _ => {}
        }
        out
    }
}

impl StateMachine for ChordMachine {
    fn handle(&mut self, input: SmInput) -> Vec<SmOutput> {
        let outputs = match input {
            SmInput::InsertBase(tuple) => {
                if self.tuples.insert(tuple.clone()) {
                    self.on_tuple(&tuple)
                } else {
                    Vec::new()
                }
            }
            SmInput::DeleteBase(tuple) => {
                self.tuples.remove(&tuple);
                Vec::new()
            }
            SmInput::Receive { delta, .. } => match delta.polarity {
                Polarity::Plus => {
                    if self.tuples.insert(delta.tuple.clone()) {
                        self.on_tuple(&delta.tuple)
                    } else {
                        Vec::new()
                    }
                }
                Polarity::Minus => {
                    self.tuples.remove(&delta.tuple);
                    Vec::new()
                }
            },
        };
        // Locally derived tuples (e.g. a lookup result resolved by the origin
        // itself) remain part of the node's state.
        for output in &outputs {
            if let SmOutput::Derive { tuple, .. } = output {
                if tuple.location == self.node {
                    self.tuples.insert(tuple.clone());
                }
            }
        }
        outputs
    }

    fn fresh(&self) -> Box<dyn StateMachine> {
        Box::new(ChordMachine {
            node: self.node,
            eclipse: false,
            tuples: BTreeSet::new(),
        })
    }

    fn current_tuples(&self) -> Vec<Tuple> {
        self.tuples.iter().cloned().collect()
    }

    /// The whole Chord state is the tuple set (`eclipse` is behaviour, not
    /// state, and deliberately stays out of the snapshot: restoring an
    /// attacker's snapshot into the honest expected machine must yield honest
    /// suffix behaviour so the divergence shows up red).
    fn snapshot(&self) -> Option<Vec<u8>> {
        let mut w = snp_datalog::SnapshotWriter::new();
        w.u64(self.tuples.len() as u64);
        for tuple in &self.tuples {
            w.tuple(tuple);
        }
        Some(w.finish())
    }

    fn restore(&self, snapshot: &[u8]) -> Result<Box<dyn StateMachine>, String> {
        let mut r = snp_datalog::SnapshotReader::new(snapshot);
        let mut machine = ChordMachine {
            node: self.node,
            eclipse: self.eclipse,
            tuples: BTreeSet::new(),
        };
        (|| {
            let n = r.read_len()?;
            for _ in 0..n {
                machine.tuples.insert(r.tuple()?);
            }
            r.expect_exhausted()
        })()
        .map_err(|e| e.to_string())?;
        Ok(Box::new(machine))
    }

    /// Negative provenance for the Chord workload: a missing `lookupResult`
    /// is traced through the routing chain — either the resolver never held
    /// the (forwarded) request, or a node on the path swallowed it; a
    /// missing forwarded `lookup` is traced back hop by hop the same way.
    /// Ring configuration (`me` / `succ` / `finger`) and locally originated
    /// lookups are base tuples.
    fn absence_of(&self, pattern: &Tuple, present: &[Tuple], peers: &[NodeId]) -> Vec<AbsenceWitness> {
        match pattern.relation.as_str() {
            "lookupResult" => self.absent_lookup_result(pattern, present, peers),
            "lookup" => self.absent_lookup(pattern, present, peers),
            "me" | "succ" | "finger" | "stabTick" | "keepTick" | "fixTick" => vec![AbsenceWitness::NoBaseInsertion],
            _ => Vec::new(),
        }
    }

    fn name(&self) -> String {
        format!("chord@{}", self.node)
    }
}

// ---- scenario construction ----------------------------------------------------

/// A constructed Chord ring: node ids sorted by Chord identifier.
#[derive(Clone, Debug)]
pub struct ChordRing {
    /// `(chord id, node)` pairs sorted by id.
    pub members: Vec<(u64, NodeId)>,
}

impl ChordRing {
    /// Build a ring over nodes `1..=n`.
    pub fn new(n: u64) -> ChordRing {
        let mut members: Vec<(u64, NodeId)> = (1..=n).map(|i| (chord_id(NodeId(i)), NodeId(i))).collect();
        members.sort();
        ChordRing { members }
    }

    /// The successor (id, node) of the member with Chord id `id`.
    pub fn successor_of(&self, id: u64) -> (u64, NodeId) {
        *self
            .members
            .iter()
            .find(|(mid, _)| *mid > id)
            .unwrap_or(&self.members[0])
    }

    /// The owner of `key` (the first member at or after the key).
    pub fn owner_of(&self, key: u64) -> (u64, NodeId) {
        *self
            .members
            .iter()
            .find(|(mid, _)| *mid >= key)
            .unwrap_or(&self.members[0])
    }

    /// The finger table of the member with Chord id `id`.
    pub fn fingers_of(&self, id: u64) -> Vec<(u32, u64, NodeId)> {
        (0..ID_BITS)
            .map(|i| {
                let target = (id + (1u64 << i)) % ID_SPACE;
                let (owner_id, owner) = self.owner_of(target);
                (i, owner_id, owner)
            })
            .collect()
    }

    /// The static ring (me / succ / finger base tuples) as workload events
    /// scheduled at time `at`.
    pub fn base_tuples(&self, at: SimTime) -> Vec<WorkloadEvent> {
        let mut events = Vec::new();
        for (id, node) in &self.members {
            events.push(WorkloadEvent::insert(at, *node, me(*node, *id)));
            let (succ_id, succ_node) = self.successor_of(*id);
            events.push(WorkloadEvent::insert(at, *node, succ(*node, succ_id, succ_node)));
            for (idx, fid, fnode) in self.fingers_of(*id) {
                events.push(WorkloadEvent::insert(at, *node, finger(*node, idx, fid, fnode)));
            }
        }
        events
    }

    /// Install the static ring into a deployment at time `at`.
    pub fn install(&self, deployment: &mut Deployment, at: SimTime) {
        for event in self.base_tuples(at) {
            deployment.schedule(event);
        }
    }
}

/// Parameters for the Chord experiment configurations of §7.1.
#[derive(Clone, Copy, Debug)]
pub struct ChordScenario {
    /// Number of nodes (50 = Chord-Small, 250 = Chord-Large).
    pub nodes: u64,
    /// Stabilization period in seconds (50 s in the paper).
    pub stabilize_every_s: u64,
    /// Finger-fixing period in seconds (50 s in the paper).
    pub fix_fingers_every_s: u64,
    /// Keep-alive period in seconds (10 s in the paper).
    pub keepalive_every_s: u64,
    /// Number of random lookups injected per minute.
    pub lookups_per_minute: u64,
    /// Total simulated duration in seconds (15 min in the paper).
    pub duration_s: u64,
}

impl ChordScenario {
    /// The paper's Chord-Small configuration (scaled duration).
    pub fn small(duration_s: u64) -> ChordScenario {
        ChordScenario {
            nodes: 50,
            stabilize_every_s: 50,
            fix_fingers_every_s: 50,
            keepalive_every_s: 10,
            lookups_per_minute: 30,
            duration_s,
        }
    }

    /// The paper's Chord-Large configuration (scaled duration).
    pub fn large(duration_s: u64) -> ChordScenario {
        ChordScenario {
            nodes: 250,
            ..ChordScenario::small(duration_s)
        }
    }

    /// The deployable application for this scenario.  `eclipse_attacker`
    /// optionally turns one node into an Eclipse attacker.
    pub fn app(&self, eclipse_attacker: Option<NodeId>) -> ChordApp {
        ChordApp {
            scenario: *self,
            ring: ChordRing::new(self.nodes),
            eclipse_attacker,
        }
    }

    /// Build the scenario into a ready-to-run deployment.
    pub fn build(&self, secure: bool, seed: u64, eclipse_attacker: Option<NodeId>) -> (Deployment, ChordRing) {
        let app = self.app(eclipse_attacker);
        let ring = app.ring.clone();
        let deployment = Deployment::builder().seed(seed).secure(secure).app(app).build();
        (deployment, ring)
    }

    /// Draw a deterministic churn plan for this scenario: roughly `percent`%
    /// of the ring (at least one node) crash-stops partway through the run
    /// and recovers before it ends.
    ///
    /// The plan depends only on `(scenario, seed)`, so identical runs —
    /// including the wheel-vs-heap scheduler differential and a CI re-run —
    /// see byte-identical membership flips.
    pub fn churn_plan(&self, seed: u64, percent: u64) -> ChurnPlan {
        let mut rng = snp_sim::rng::DetRng::new(seed).fork("chord-churn");
        let count = ((self.nodes * percent) / 100).max(1);
        let mut victims = BTreeSet::new();
        while (victims.len() as u64) < count.min(self.nodes) {
            victims.insert(NodeId(1 + rng.next_below(self.nodes)));
        }
        let duration_ms = self.duration_s * 1000;
        let mut events = Vec::new();
        for node in victims {
            // Down somewhere in the second quarter of the run, back up at
            // least two seconds later and before the final quarter, so every
            // victim exercises both the crashed and the recovered regime.
            let down_ms = rng.next_range(duration_ms / 4, duration_ms / 2);
            let up_ms = down_ms + 2000 + rng.next_below((duration_ms / 4).max(1));
            events.push(ChurnEvent {
                at: SimTime::from_millis(down_ms),
                node,
                up: false,
            });
            events.push(ChurnEvent {
                at: SimTime::from_millis(up_ms),
                node,
                up: true,
            });
        }
        events.sort_by_key(|e| (e.at, e.node, e.up));
        ChurnPlan { events }
    }
}

/// One membership flip in a [`ChurnPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Global simulation time of the flip.
    pub at: SimTime,
    /// The node crashing or recovering.
    pub node: NodeId,
    /// `false` = crash-stop, `true` = recover.
    pub up: bool,
}

/// A deterministic churn schedule: time-ordered crash/recover flips applied
/// while a deployment runs (see [`run_with_churn`]).
#[derive(Clone, Debug, Default)]
pub struct ChurnPlan {
    /// Flips sorted by `(at, node)`; each victim goes down exactly once and
    /// comes back exactly once.
    pub events: Vec<ChurnEvent>,
}

/// Run a deployment to `until`, applying the plan's membership flips at
/// their scheduled instants.  Returns the number of simulator events
/// processed.  Flips scheduled at or after `until` are skipped.
pub fn run_with_churn(deployment: &mut Deployment, plan: &ChurnPlan, until: SimTime) -> u64 {
    let mut processed = 0;
    for flip in &plan.events {
        if flip.at >= until {
            break;
        }
        processed += deployment.run_until(flip.at);
        if flip.up {
            deployment.sim.faults.restore(flip.node);
        } else {
            deployment.sim.faults.crash(flip.node);
        }
    }
    processed + deployment.run_until(until)
}

/// Build the Chord *Eclipse* scenario for the negative query "why does no
/// lookup result name the true owner?": a quiet `nodes`-member ring where
/// the attacker is the queried key's resolver — the honest machine would
/// resolve the key to the attacker's successor and send that result to the
/// origin; the eclipse machine answers with itself, so the correct result
/// never arrives.  The origin's lookup (request id 6) is injected at t = 1 s;
/// run the deployment, then ask
/// `why_absent(correct_result).at(origin)`.
///
/// Returns the deployment, the origin, the attacker, and the *correct*
/// (absent) result tuple.  Requires `nodes >= 5`.
pub fn eclipse_scenario(nodes: u64, seed: u64) -> (Deployment, NodeId, NodeId, Tuple) {
    assert!(nodes >= 5, "the eclipse scenario needs a non-trivial ring");
    let scenario = ChordScenario {
        nodes,
        stabilize_every_s: 1000,
        fix_fingers_every_s: 1000,
        keepalive_every_s: 1000,
        lookups_per_minute: 0,
        duration_s: 10,
    };
    let ring = ChordRing::new(nodes);
    let origin = ring.members[0].1;
    let (attacker_id, attacker) = ring.members[3];
    let key = (attacker_id + 1) % ID_SPACE;
    let (owner_id, owner) = ring.owner_of(key);
    debug_assert_ne!(owner, origin);
    debug_assert_ne!(owner, attacker);
    let (mut tb, _) = scenario.build(true, seed, Some(attacker));
    tb.insert_at(SimTime::from_secs(1), origin, lookup(origin, key, origin, 6));
    (tb, origin, attacker, lookup_result(origin, 6, key, owner, owner_id))
}

/// The deployable Chord application: the static ring plus the maintenance and
/// lookup workload of a [`ChordScenario`].
#[derive(Debug)]
pub struct ChordApp {
    /// The experiment parameters.
    pub scenario: ChordScenario,
    /// The precomputed ring (public so callers can pick origins/keys).
    pub ring: ChordRing,
    /// If set, this node mounts an Eclipse attack.
    pub eclipse_attacker: Option<NodeId>,
}

impl Application for ChordApp {
    fn name(&self) -> String {
        format!("chord-{}", self.scenario.nodes)
    }

    fn nodes(&self) -> Vec<NodeId> {
        (1..=self.scenario.nodes).map(NodeId).collect()
    }

    fn node(&self, id: NodeId) -> AppNode {
        // `ChordMachine::fresh` always returns the honest machine, so the
        // attacker is still replayed against correct Chord behaviour.
        if self.eclipse_attacker == Some(id) {
            AppNode::new(Box::new(ChordMachine::eclipse(id)))
        } else {
            AppNode::new(Box::new(ChordMachine::new(id)))
        }
    }

    fn workload(&self, seed: u64) -> Vec<WorkloadEvent> {
        let scenario = &self.scenario;
        let mut events = self.ring.base_tuples(SimTime::from_millis(5));

        // Periodic maintenance ticks for every node.
        let mut seq = 0u64;
        let mut ticks = |kind: &str, every_s: u64, seq: &mut u64| {
            if every_s == 0 {
                return;
            }
            // Experiment cadences are seconds-scale; they fit a usize.
            #[allow(clippy::cast_possible_truncation)]
            for t in (every_s..=scenario.duration_s).step_by(every_s as usize) {
                for (_, node) in &self.ring.members {
                    events.push(WorkloadEvent::insert(
                        SimTime::from_secs(t),
                        *node,
                        tick(kind, *node, *seq),
                    ));
                }
                *seq += 1;
            }
        };
        ticks("stabTick", scenario.stabilize_every_s, &mut seq);
        ticks("keepTick", scenario.keepalive_every_s, &mut seq);
        ticks("fixTick", scenario.fix_fingers_every_s, &mut seq);

        // Random lookups from random origins.
        let mut rng = snp_sim::rng::DetRng::new(seed ^ 0xc0ffee);
        let total_lookups = scenario.lookups_per_minute * scenario.duration_s / 60;
        for req in 0..total_lookups {
            // Lossless: `next_below(len)` is below `len`, itself a usize.
            #[allow(clippy::cast_possible_truncation)]
            let origin = self.ring.members[rng.next_below(self.ring.members.len() as u64) as usize].1;
            let key = rng.next_below(ID_SPACE);
            let at = SimTime::from_millis(1_000 + rng.next_below(scenario.duration_s.saturating_mul(1_000).max(1)));
            events.push(WorkloadEvent::insert(at, origin, lookup(origin, key, origin, req)));
        }
        events
    }

    fn program(&self) -> Option<String> {
        Some(CHORD_PROGRAM.into())
    }
}

#[cfg(test)]
mod tests {

    #[test]
    fn declared_program_is_lint_clean_against_the_workload() {
        use snp_core::deploy::WorkloadOp;
        let app = ChordScenario::small(60).app(None);
        let rules = snp_datalog::parser::parse_program(CHORD_PROGRAM).expect("program parses");
        let facts: Vec<Tuple> = app
            .workload(7)
            .into_iter()
            .map(|e| match e.op {
                WorkloadOp::Insert(t) | WorkloadOp::Delete(t) => t,
            })
            .collect();
        for d in snp_datalog::analyze_with_facts(&rules, &facts) {
            assert!(d.severity < snp_datalog::Severity::Warning, "{}", d.render());
        }
    }

    use super::*;

    #[test]
    fn ring_helpers_are_consistent() {
        let ring = ChordRing::new(20);
        assert_eq!(ring.members.len(), 20);
        for window in ring.members.windows(2) {
            assert!(window[0].0 < window[1].0, "ids sorted and unique");
        }
        let (id, node) = ring.members[3];
        let (sid, snode) = ring.successor_of(id);
        assert_ne!(node, snode);
        assert!(sid > id || snode == ring.members[0].1);
        // The owner of a key equal to a member id is that member.
        assert_eq!(ring.owner_of(id), (id, node));
    }

    #[test]
    fn interval_arithmetic_wraps() {
        assert!(in_interval(5, 3, 8));
        assert!(!in_interval(2, 3, 8));
        assert!(in_interval(1, 60000, 10)); // wrap-around
        assert!(in_interval(8, 8, 8)); // full circle
    }

    #[test]
    fn lookup_resolves_to_ring_owner() {
        let scenario = ChordScenario {
            nodes: 12,
            stabilize_every_s: 1000,
            fix_fingers_every_s: 1000,
            keepalive_every_s: 1000,
            lookups_per_minute: 0,
            duration_s: 10,
        };
        let (mut tb, ring) = scenario.build(true, 3, None);
        let key = key_id("some-object");
        let (owner_id, owner) = ring.owner_of(key);
        let origin = ring.members[0].1;
        tb.insert_at(SimTime::from_secs(1), origin, lookup(origin, key, origin, 77));
        tb.run_until(SimTime::from_secs(60));
        let expected = lookup_result(origin, 77, key, owner, owner_id);
        assert!(
            tb.handles[&origin].with(|n| n.has_tuple(&expected)),
            "origin must learn the owner of the key"
        );
    }

    #[test]
    fn maintenance_traffic_flows() {
        let scenario = ChordScenario {
            nodes: 8,
            stabilize_every_s: 2,
            fix_fingers_every_s: 4,
            keepalive_every_s: 1,
            lookups_per_minute: 0,
            duration_s: 8,
        };
        let (mut tb, _) = scenario.build(true, 3, None);
        tb.run_until(SimTime::from_secs(20));
        let traffic = tb.total_traffic();
        assert!(traffic.data_messages > 8 * 4, "probes and replies must flow");
    }

    #[test]
    fn eclipse_attacker_is_identified() {
        let scenario = ChordScenario {
            nodes: 10,
            stabilize_every_s: 1000,
            fix_fingers_every_s: 1000,
            keepalive_every_s: 1000,
            lookups_per_minute: 0,
            duration_s: 10,
        };
        let ring_preview = ChordRing::new(10);
        // Pick an origin and a key owned by somebody far from the origin, and
        // make the first hop of the lookup the attacker.
        let origin = ring_preview.members[0].1;
        let key = (ring_preview.members[5].0 + 1) % ID_SPACE;
        let (_, owner) = ring_preview.owner_of(key);
        assert_ne!(owner, origin);

        // Make the origin's successor the attacker so the lie is easy to place:
        // actually any node that handles the lookup works; we use the owner
        // itself is fine too.  Choose the node the origin will forward to.
        let attacker = ring_preview.members[3].1;
        let (mut tb, _) = scenario.build(true, 3, Some(attacker));
        tb.insert_at(SimTime::from_secs(1), attacker, lookup(attacker, key, attacker, 5));
        // Also a lookup that actually routes through the attacker:
        tb.insert_at(SimTime::from_secs(1), origin, lookup(origin, key, origin, 6));
        tb.run_until(SimTime::from_secs(60));

        // The attacker answered some lookup with itself; querying the bogus
        // result's provenance implicates the attacker.
        let bogus = lookup_result(attacker, 5, key, attacker, chord_id(attacker));
        assert!(tb.handles[&attacker].with(|n| n.has_tuple(&bogus)));
        let result = tb.querier.why_exists(bogus).at(attacker).run();
        assert!(
            result.suspect_nodes().contains(&attacker) || result.implicated_nodes().contains(&attacker),
            "the Eclipse attacker must be implicated: {:?}",
            result.suspect_nodes()
        );
    }

    #[test]
    fn eclipse_why_absent_of_correct_result_implicates_the_attacker() {
        // The attacker swallows a routed lookup and answers with itself, so
        // the *correct* owner's result never reaches the origin.  The
        // operator asks the negative question: why is there no
        // lookupResult naming the true owner?
        let (mut tb, origin, attacker, correct) = eclipse_scenario(10, 3);
        let owner = correct.node_arg(2).expect("owner argument");
        tb.run_until(SimTime::from_secs(60));

        assert!(
            !tb.handles[&origin].with(|n| n.has_tuple(&correct)),
            "the eclipse must blackhole the correct result"
        );
        let result = tb.querier.why_absent(correct).at(origin).run();
        assert!(result.root.is_some(), "the absence must be explained");
        assert!(!result.is_legitimate(), "an eclipsed lookup is not a clean absence");
        assert!(
            result.implicated_nodes().contains(&attacker) || result.suspect_nodes().contains(&attacker),
            "the Eclipse attacker must surface: implicated {:?}, suspects {:?}",
            result.implicated_nodes(),
            result.suspect_nodes()
        );
        assert!(
            !result.implicated_nodes().contains(&origin) && !result.implicated_nodes().contains(&owner),
            "correct nodes must not be implicated: {:?}",
            result.implicated_nodes()
        );
    }

    #[test]
    fn clean_lookup_has_legitimate_cross_node_provenance() {
        let scenario = ChordScenario {
            nodes: 10,
            stabilize_every_s: 1000,
            fix_fingers_every_s: 1000,
            keepalive_every_s: 1000,
            lookups_per_minute: 0,
            duration_s: 10,
        };
        let (mut tb, ring) = scenario.build(true, 9, None);
        let origin = ring.members[0].1;
        let key = (ring.members[7].0 + 1) % ID_SPACE;
        let (owner_id, owner) = ring.owner_of(key);
        tb.insert_at(SimTime::from_secs(1), origin, lookup(origin, key, origin, 42));
        tb.run_until(SimTime::from_secs(60));
        let expected = lookup_result(origin, 42, key, owner, owner_id);
        assert!(tb.handles[&origin].with(|n| n.has_tuple(&expected)));
        let result = tb.querier.why_exists(expected).at(origin).run();
        assert!(result.root.is_some());
        assert!(
            result.implicated_nodes().is_empty(),
            "clean lookup must implicate nobody"
        );
        // The explanation involves more than one node (the lookup was routed).
        let hosts: std::collections::BTreeSet<NodeId> = result
            .traversal
            .as_ref()
            .unwrap()
            .depths
            .keys()
            .filter_map(|id| result.graph.vertex(id).map(|v| v.host()))
            .collect();
        assert!(hosts.len() >= 2, "lookup provenance should span nodes: {hosts:?}");
    }

    #[test]
    fn churn_plan_is_deterministic_and_well_formed() {
        let scenario = ChordScenario::small(120);
        let a = scenario.churn_plan(21, 10);
        let b = scenario.churn_plan(21, 10);
        assert_eq!(a.events, b.events, "same (scenario, seed) => same plan");
        assert!(!a.events.is_empty());
        // 10% of 50 nodes => 5 victims, each with one down and one up flip.
        assert_eq!(a.events.len(), 10);
        // Time-ordered, and every victim goes down before it comes back.
        assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at));
        let mut down_at = std::collections::BTreeMap::new();
        for flip in &a.events {
            if flip.up {
                let down = down_at.get(&flip.node).expect("up only after down");
                assert!(flip.at > *down);
            } else {
                assert!(down_at.insert(flip.node, flip.at).is_none(), "one down per victim");
            }
        }
        // A different seed draws a different plan.
        let c = scenario.churn_plan(22, 10);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn chord_run_with_churn_is_deterministic() {
        let scenario = ChordScenario {
            nodes: 20,
            stabilize_every_s: 5,
            fix_fingers_every_s: 10,
            keepalive_every_s: 2,
            lookups_per_minute: 30,
            duration_s: 30,
        };
        let plan = scenario.churn_plan(21, 10);
        let run = |plan: &ChurnPlan| {
            let (mut tb, _) = scenario.build(false, 17, None);
            let events = run_with_churn(&mut tb, plan, SimTime::from_secs(35));
            (events, tb.sim.stats.clone())
        };
        let (events_a, stats_a) = run(&plan);
        let (events_b, stats_b) = run(&plan);
        assert!(events_a > 0);
        assert_eq!(events_a, events_b);
        assert_eq!(stats_a, stats_b, "churned runs replay byte-identically");
        // Churn changes the execution: the fault-free run differs.
        let (events_c, _) = run(&ChurnPlan::default());
        assert_ne!(events_a, events_c, "crashed nodes must drop some events");
    }
}

//! The MinCost routing example of §3.3 (Figure 2).
//!
//! Five routers `a`–`e` connected by links of different costs; each router
//! derives the lowest-cost path to router `d`.  The rules are written in the
//! DDlog-style text syntax and evaluated by the `snp-datalog` engine, so the
//! provenance of every `bestCost` tuple is inferred automatically.

use snp_core::deploy::{AppNode, Application, Deployment, WorkloadEvent};
use snp_crypto::keys::NodeId;
use snp_datalog::parser::parse_program;
use snp_datalog::{Engine, NaiveEngine, RuleSet, StateMachine, Tuple, Value};
use snp_sim::SimTime;

/// Router identifiers matching the figure: a=1, b=2, c=3, d=4, e=5.
pub const A: NodeId = NodeId(1);
/// Router b.
pub const B: NodeId = NodeId(2);
/// Router c.
pub const C: NodeId = NodeId(3);
/// Router d (the destination).
pub const D: NodeId = NodeId(4);
/// Router e.
pub const E: NodeId = NodeId(5);

/// The MinCost rule program (§3.3).
pub const MINCOST_PROGRAM: &str = r#"
    # R1: a router knows the cost of its direct links
    R1 cost(@X, Y, Y, K)       :- link(@X, Y, K).
    # R2: it can learn the cost of an advertised route from a neighbor
    R2 cost(@C, D, B, K3)      :- link(@B, C, K1), bestCost(@B, D, K2), K3 := K1 + K2, C != D.
    # R3: it chooses its bestCost according to the lowest-cost path it knows
    R3 bestCost(@X, Y, min<K>) :- cost(@X, Y, Z, K).
"#;

/// Parse the MinCost rules into a validated rule set.
pub fn mincost_rules() -> RuleSet {
    RuleSet::new(parse_program(MINCOST_PROGRAM).expect("MinCost program parses")).expect("MinCost rules are valid")
}

/// A `link(@x, y, cost)` base tuple.
pub fn link(x: NodeId, y: NodeId, cost: i64) -> Tuple {
    Tuple::new("link", x, vec![Value::Node(y), Value::Int(cost)])
}

/// A `bestCost(@x, y, cost)` tuple (for assertions and queries).
pub fn best_cost(x: NodeId, y: NodeId, cost: i64) -> Tuple {
    Tuple::new("bestCost", x, vec![Value::Node(y), Value::Int(cost)])
}

/// The (symmetric) links of the example topology in §3.3, with their costs.
pub fn example_topology() -> Vec<(NodeId, NodeId, i64)> {
    vec![
        (A, B, 6),
        (A, C, 10),
        (A, E, 2),
        (B, C, 2),
        (B, D, 3),
        (C, D, 5),
        (C, E, 3),
        (D, E, 5),
    ]
}

/// A machine factory for one MinCost router, for
/// [`snp_core::DeploymentBuilder::node`]:
/// `Deployment::builder().node(C, mincost::router())`.
pub fn router() -> impl Fn(NodeId) -> Box<dyn StateMachine> {
    |id| Box::new(Engine::new(id, mincost_rules()))
}

/// A router backed by the retained naive-scan reference engine — the
/// differential baseline for [`router`].  Deployments built with this
/// factory must be externally indistinguishable (outputs, snapshots, node
/// fingerprints) from indexed ones; tests that assert so keep the indexed
/// engine honest at the deployment level.
pub fn naive_router() -> impl Fn(NodeId) -> Box<dyn StateMachine> {
    |id| Box::new(NaiveEngine::new(id, mincost_rules()))
}

/// The MinCost routing application: a set of routers evaluating
/// [`MINCOST_PROGRAM`] over a link topology installed as base tuples.
#[derive(Debug)]
pub struct MinCost {
    routers: Vec<NodeId>,
    topology: Vec<(NodeId, NodeId, i64)>,
}

impl MinCost {
    /// The five-router example of §3.3 (Figure 2).
    pub fn example() -> MinCost {
        MinCost {
            routers: vec![A, B, C, D, E],
            topology: example_topology(),
        }
    }

    /// The example routers over a custom (symmetric) link topology.
    pub fn with_topology(topology: Vec<(NodeId, NodeId, i64)>) -> MinCost {
        MinCost {
            routers: vec![A, B, C, D, E],
            topology,
        }
    }
}

impl Application for MinCost {
    fn name(&self) -> String {
        "mincost".into()
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.routers.clone()
    }

    fn node(&self, id: NodeId) -> AppNode {
        AppNode::new(Box::new(Engine::new(id, mincost_rules())))
    }

    fn workload(&self, _seed: u64) -> Vec<WorkloadEvent> {
        let mut events = Vec::new();
        for (i, (x, y, cost)) in self.topology.iter().enumerate() {
            let at = SimTime::from_millis(10 + i as u64);
            events.push(WorkloadEvent::insert(at, *x, link(*x, *y, *cost)));
            events.push(WorkloadEvent::insert(at, *y, link(*y, *x, *cost)));
        }
        events
    }

    fn program(&self) -> Option<String> {
        Some(MINCOST_PROGRAM.into())
    }
}

/// Build the five-router MinCost deployment with all link base tuples
/// scheduled shortly after start.
pub fn build_scenario(secure: bool, seed: u64) -> Deployment {
    Deployment::builder()
        .seed(seed)
        .secure(secure)
        .app(MinCost::example())
        .build()
}

#[cfg(test)]
mod tests {

    #[test]
    fn declared_program_is_lint_clean_against_the_workload() {
        use snp_core::deploy::WorkloadOp;
        let app = MinCost::example();
        let rules = snp_datalog::parser::parse_program(MINCOST_PROGRAM).expect("program parses");
        let facts: Vec<Tuple> = app
            .workload(7)
            .into_iter()
            .map(|e| match e.op {
                WorkloadOp::Insert(t) | WorkloadOp::Delete(t) => t,
            })
            .collect();
        for d in snp_datalog::analyze_with_facts(&rules, &facts) {
            assert!(d.severity < snp_datalog::Severity::Warning, "{}", d.render());
        }
    }

    use super::*;

    #[test]
    fn rules_parse_and_validate() {
        let rules = mincost_rules();
        assert_eq!(rules.rules().len(), 3);
    }

    #[test]
    fn converges_to_paper_best_costs() {
        let mut tb = build_scenario(true, 42);
        tb.run_until(SimTime::from_secs(30));
        // Figure 2: bestCost(@c, d, 5) — c's cheapest path to d costs 5 (via b).
        assert!(
            tb.handles[&C].with(|n| n.has_tuple(&best_cost(C, D, 5))),
            "c must know a cost-5 path to d"
        );
        // b's direct link to d costs 3 and is the best.
        assert!(tb.handles[&B].with(|n| n.has_tuple(&best_cost(B, D, 3))));
        // a reaches d via b (6+3=9) or via e… a-e(2), e-d(5) = 7, so 7.
        assert!(tb.handles[&A].with(|n| n.has_tuple(&best_cost(A, D, 7))));
    }

    #[test]
    fn provenance_of_best_cost_bottoms_out_at_link_insertions() {
        let mut tb = build_scenario(true, 42);
        tb.run_until(SimTime::from_secs(30));
        let result = tb.querier.why_exists(best_cost(C, D, 5)).at(C).run();
        assert!(result.root.is_some());
        assert!(
            result.is_legitimate(),
            "clean MinCost run must explain bestCost legitimately:\n{}",
            result.render()
        );
        // Figure 2: bestCost(@c,d,5) can be derived either from c's direct
        // link to d or from b's advertisement; with the unique-derivation
        // simplification the engine keeps one of them, and either way the
        // explanation must bottom out at a base link insertion of cost 5 or 3.
        let mentions_link = result.mentions(&link(C, D, 5)) || result.mentions(&link(B, D, 3));
        assert!(
            mentions_link,
            "explanation must include a base link tuple:\n{}",
            result.render()
        );
    }

    #[test]
    fn provenance_crosses_nodes_when_no_direct_link_exists() {
        // Remove the direct c–d link so the only way c learns a route to d is
        // through b's advertisement; the explanation must then cross into b.
        let sparse: Vec<_> = example_topology()
            .into_iter()
            .filter(|(x, y, _)| (*x, *y) != (C, D))
            .collect();
        let mut tb = Deployment::builder()
            .seed(42)
            .app(MinCost::with_topology(sparse))
            .build();
        tb.run_until(SimTime::from_secs(30));
        assert!(
            tb.handles[&C].with(|n| n.has_tuple(&best_cost(C, D, 5))),
            "c still reaches d via b at cost 5"
        );
        let result = tb.querier.why_exists(best_cost(C, D, 5)).at(C).run();
        assert!(result.is_legitimate(), "explanation:\n{}", result.render());
        assert!(
            result.mentions(&link(B, D, 3)),
            "explanation must include link(@b,d,3):\n{}",
            result.render()
        );
    }

    #[test]
    fn baseline_scenario_converges_too() {
        let mut tb = build_scenario(false, 42);
        tb.run_until(SimTime::from_secs(30));
        assert!(tb.handles[&C].with(|n| n.has_tuple(&best_cost(C, D, 5))));
        assert_eq!(tb.total_log_bytes(), 0);
    }
}

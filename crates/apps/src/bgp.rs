//! A path-vector BGP engine standing in for Quagga (§6.3), driven through an
//! external-specification proxy.
//!
//! Each AS is one node.  The engine implements the parts of BGP the paper's
//! forensic scenarios exercise:
//!
//! * route announcements and withdrawals carrying full AS paths,
//! * per-prefix best-route selection (local preference by business
//!   relationship, then shortest AS path, then lowest neighbor id),
//! * optional per-prefix next-hop preferences (used to build BadGadget \[11\]),
//! * Gao–Rexford-style export policies (routes learned from a provider or a
//!   peer are only exported to customers).
//!
//! The machine reports the provenance of every selected route and every
//! advertisement (the proxy's external specification: an advertisement is
//! either originated locally or extends an advertisement previously received
//! — the `maybe` rule of §6.3 — and at most one route per prefix is exported
//! to a neighbor at any time).

use snp_core::deploy::{AppNode, Application, Deployment, WorkloadEvent};
use snp_crypto::keys::NodeId;
use snp_datalog::{AbsenceWitness, Polarity, SmInput, SmOutput, StateMachine, Tuple, TupleDelta, Value};
use snp_sim::rng::DetRng;
use snp_sim::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// Business relationship of a neighbor, from the local AS's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Relation {
    /// The neighbor is our customer (we provide transit to it).
    Customer,
    /// The neighbor is a peer.
    Peer,
    /// The neighbor is our provider.
    Provider,
}

impl Relation {
    fn as_str(&self) -> &'static str {
        match self {
            Relation::Customer => "customer",
            Relation::Peer => "peer",
            Relation::Provider => "provider",
        }
    }

    fn from_str(s: &str) -> Option<Relation> {
        match s {
            "customer" => Some(Relation::Customer),
            "peer" => Some(Relation::Peer),
            "provider" => Some(Relation::Provider),
            _ => None,
        }
    }

    /// Local preference: customer routes are preferred over peer routes over
    /// provider routes (higher is better).
    fn local_pref(&self) -> i64 {
        match self {
            Relation::Customer => 3,
            Relation::Peer => 2,
            Relation::Provider => 1,
        }
    }
}

/// The declarative companion of the BGP speaker: the external specification
/// the proxy reports provenance against (§6.3), written as NDlog rules so
/// the static analyzer and `DeploymentBuilder` can cross-check it against
/// the tuples the machine actually produces.
///
/// The `maybe` rules are exactly the paper's device for a black-box
/// protocol: selection among candidates (B2) and export policy (B3) are
/// *nondeterministic choices* the hand-written machine makes — the rules
/// only constrain what a legitimate choice may be derived from.  The
/// machine's path-concatenation on export is not expressible without list
/// constructors, so B3 carries the path through unchanged.
pub const BGP_PROGRAM: &str = r#"
    # B1: an advertisement received from a configured neighbor is a candidate
    B1 candidate(@A, P, Path, V)      :- advRoute(@A, P, Path, V), neighbor(@A, V, Rel).
    # B2: the speaker selects one candidate per prefix (policy choice)
    B2 route(@A, P, Path, V)    maybe :- candidate(@A, P, Path, V).
    # B3: a selected route may be exported to a neighbor (export policy)
    B3 advRoute(@B, P, Path, A) maybe :- route(@A, P, Path, V), neighbor(@A, B, Rel).
"#;

// ---- tuple constructors -------------------------------------------------------

/// `originate(@a, prefix)` — the AS originates the prefix (base tuple).
pub fn originate(asn: NodeId, prefix: &str) -> Tuple {
    Tuple::new("originate", asn, vec![Value::str(prefix)])
}

/// `neighbor(@a, b, relation)` — static neighbor configuration (base tuple).
pub fn neighbor(asn: NodeId, other: NodeId, relation: Relation) -> Tuple {
    Tuple::new("neighbor", asn, vec![Value::Node(other), Value::str(relation.as_str())])
}

/// `prefer(@a, prefix, nexthop)` — optional next-hop preference (base tuple;
/// this is what creates BadGadget-style oscillation potential).
pub fn prefer(asn: NodeId, prefix: &str, nexthop: NodeId) -> Tuple {
    Tuple::new("prefer", asn, vec![Value::str(prefix), Value::Node(nexthop)])
}

/// `advRoute(@a, prefix, path, from)` — an advertisement received by (or sent
/// to) AS `a`: `path` is the AS path (nearest first), `from` the neighbor it
/// came from.
pub fn adv_route(asn: NodeId, prefix: &str, path: &[NodeId], from: NodeId) -> Tuple {
    Tuple::new(
        "advRoute",
        asn,
        vec![
            Value::str(prefix),
            Value::List(path.iter().map(|n| Value::Node(*n)).collect()),
            Value::Node(from),
        ],
    )
}

/// `route(@a, prefix, path, via)` — the currently selected best route.
pub fn route(asn: NodeId, prefix: &str, path: &[NodeId], via: NodeId) -> Tuple {
    Tuple::new(
        "route",
        asn,
        vec![
            Value::str(prefix),
            Value::List(path.iter().map(|n| Value::Node(*n)).collect()),
            Value::Node(via),
        ],
    )
}

/// `route(@a, prefix, *, *)` — the negative-query pattern for "a route to
/// `prefix`, whatever its path": the blackhole question "why does my BGP
/// table have *no* route to prefix P?" cannot know the AS path of the route
/// it is missing.
pub fn route_pattern(asn: NodeId, prefix: &str) -> Tuple {
    Tuple::new("route", asn, vec![Value::str(prefix), Value::Wild, Value::Wild])
}

/// `advRoute(@a, prefix, *, from)` — the negative-query pattern for "an
/// advertisement of `prefix` from neighbor `from`, whatever its path".
pub fn adv_route_pattern(asn: NodeId, prefix: &str, from: NodeId) -> Tuple {
    Tuple::new(
        "advRoute",
        asn,
        vec![Value::str(prefix), Value::Wild, Value::Node(from)],
    )
}

fn path_of(tuple: &Tuple, arg: usize) -> Vec<NodeId> {
    tuple
        .args
        .get(arg)
        .and_then(Value::as_list)
        .map(|l| l.iter().filter_map(Value::as_node).collect())
        .unwrap_or_default()
}

// ---- the BGP speaker ------------------------------------------------------------

/// A candidate route for a prefix.
#[derive(Clone, Debug)]
struct Candidate {
    path: Vec<NodeId>,
    via: NodeId,
    relation: Relation,
    /// The tuple that justifies the candidate (originate or believed advRoute).
    witness: Tuple,
}

/// The deterministic BGP speaker machine.
#[derive(Clone, Debug, Default)]
pub struct BgpSpeaker {
    node: NodeId,
    /// All tuples currently visible on the node (base + believed).
    tuples: BTreeSet<Tuple>,
    /// Currently selected best route per prefix (tuple + witness).
    selected: BTreeMap<String, (Tuple, Candidate)>,
    /// Advertisements currently exported, per (neighbor, prefix).
    exported: BTreeMap<(NodeId, String), Tuple>,
}

impl BgpSpeaker {
    /// Create a speaker for an AS.
    pub fn new(node: NodeId) -> BgpSpeaker {
        BgpSpeaker {
            node,
            ..Default::default()
        }
    }

    fn neighbors(&self) -> Vec<(NodeId, Relation)> {
        self.tuples
            .iter()
            .filter(|t| t.relation == "neighbor")
            .filter_map(|t| Some((t.node_arg(0)?, Relation::from_str(t.str_arg(1)?)?)))
            .collect()
    }

    fn relation_of(&self, other: NodeId) -> Option<Relation> {
        self.neighbors().into_iter().find(|(n, _)| *n == other).map(|(_, r)| r)
    }

    fn preferred_nexthop(&self, prefix: &str) -> Option<NodeId> {
        self.tuples
            .iter()
            .find(|t| t.relation == "prefer" && t.str_arg(0) == Some(prefix))
            .and_then(|t| t.node_arg(1))
    }

    /// Collect the candidate routes for a prefix from the current tuple set.
    fn candidates(&self, prefix: &str) -> Vec<Candidate> {
        let mut out = Vec::new();
        for t in &self.tuples {
            if t.relation == "originate" && t.str_arg(0) == Some(prefix) {
                out.push(Candidate {
                    path: vec![],
                    via: self.node,
                    relation: Relation::Customer,
                    witness: t.clone(),
                });
            }
            if t.relation == "advRoute" && t.str_arg(0) == Some(prefix) {
                let path = path_of(t, 1);
                let Some(from) = t.node_arg(2) else { continue };
                // Loop prevention: discard paths containing ourselves.
                if path.contains(&self.node) {
                    continue;
                }
                let Some(relation) = self.relation_of(from) else {
                    continue;
                };
                out.push(Candidate {
                    path,
                    via: from,
                    relation,
                    witness: t.clone(),
                });
            }
        }
        out
    }

    /// Pick the best candidate: next-hop preference, then origination, then
    /// local-pref, then shortest path, then lowest neighbor id.
    fn best(&self, prefix: &str) -> Option<Candidate> {
        let preferred = self.preferred_nexthop(prefix);
        self.candidates(prefix).into_iter().min_by_key(|c| {
            let preferred_bonus = if Some(c.via) == preferred && c.via != self.node {
                0
            } else {
                1
            };
            let origin_bonus = if c.via == self.node { 0 } else { 1 };
            (
                preferred_bonus,
                origin_bonus,
                -c.relation.local_pref(),
                c.path.len(),
                c.via.0,
            )
        })
    }

    /// Export policy (Gao–Rexford): to whom may a route learned via
    /// `learned_from_relation` be exported?
    fn may_export(&self, learned_from: Relation, to_relation: Relation, originated: bool) -> bool {
        if originated || learned_from == Relation::Customer {
            true
        } else {
            // Peer / provider routes go to customers only.
            to_relation == Relation::Customer
        }
    }

    /// Recompute the selected route and the export set for `prefix`, emitting
    /// derive / underive / send outputs for everything that changed.
    fn refresh_prefix(&mut self, prefix: &str, out: &mut Vec<SmOutput>) {
        let new_best = self.best(prefix);
        let old = self.selected.get(prefix).cloned();

        let new_route_tuple = new_best.as_ref().map(|c| route(self.node, prefix, &c.path, c.via));
        let old_route_tuple = old.as_ref().map(|(t, _)| t.clone());
        if new_route_tuple != old_route_tuple {
            if let Some((old_tuple, old_cand)) = &old {
                out.push(SmOutput::Underive {
                    tuple: old_tuple.clone(),
                    rule: "bgp-select".into(),
                    body: vec![old_cand.witness.clone()],
                });
                self.selected.remove(prefix);
            }
            if let (Some(tuple), Some(cand)) = (&new_route_tuple, &new_best) {
                out.push(SmOutput::Derive {
                    tuple: tuple.clone(),
                    rule: "bgp-select".into(),
                    body: vec![cand.witness.clone()],
                });
                self.selected.insert(prefix.to_string(), (tuple.clone(), cand.clone()));
            }
        }

        // Recompute exports.
        let neighbors = self.neighbors();
        for (peer, peer_relation) in neighbors {
            let key = (peer, prefix.to_string());
            let desired: Option<Tuple> = match &new_best {
                Some(cand) if peer != cand.via => {
                    let originated = cand.via == self.node;
                    if self.may_export(cand.relation, peer_relation, originated) {
                        let mut exported_path = vec![self.node];
                        exported_path.extend(cand.path.iter().copied());
                        Some(adv_route(peer, prefix, &exported_path, self.node))
                    } else {
                        None
                    }
                }
                _ => None,
            };
            let current = self.exported.get(&key).cloned();
            if desired != current {
                if let Some(old_adv) = current {
                    // Withdraw the previously exported route (BGP constraint:
                    // at most one route per prefix per neighbor, and its
                    // replacement is causally tied to the withdrawal).
                    out.push(SmOutput::Underive {
                        tuple: old_adv.clone(),
                        rule: "bgp-export".into(),
                        body: self
                            .selected
                            .get(prefix)
                            .map(|(t, _)| vec![t.clone()])
                            .unwrap_or_default(),
                    });
                    out.push(SmOutput::Send {
                        to: key.0,
                        delta: TupleDelta::minus(old_adv),
                    });
                    self.exported.remove(&key);
                }
                if let Some(new_adv) = desired {
                    let body = self
                        .selected
                        .get(prefix)
                        .map(|(t, _)| vec![t.clone()])
                        .unwrap_or_default();
                    out.push(SmOutput::Derive {
                        tuple: new_adv.clone(),
                        rule: "bgp-export".into(),
                        body,
                    });
                    out.push(SmOutput::Send {
                        to: key.0,
                        delta: TupleDelta::plus(new_adv.clone()),
                    });
                    self.exported.insert(key, new_adv);
                }
            }
        }
    }

    // ----- negative provenance (why_absent) --------------------------------

    /// The neighbors recorded in an externally supplied tuple state.
    fn neighbors_in(node: NodeId, present: &[Tuple]) -> Vec<(NodeId, Relation)> {
        present
            .iter()
            .filter(|t| t.relation == "neighbor" && t.location == node)
            .filter_map(|t| Some((t.node_arg(0)?, Relation::from_str(t.str_arg(1)?)?)))
            .collect()
    }

    /// Why is there no selected route for `prefix` at this AS?  One witness
    /// per missing candidate source: the AS never originated the prefix, and
    /// each neighbor never advertised it.
    fn absent_route(&self, pattern: &Tuple, prefix: &str, present: &[Tuple]) -> Vec<AbsenceWitness> {
        let mut witnesses = Vec::new();
        let candidates: Vec<&Tuple> = present
            .iter()
            .filter(|t| {
                t.location == self.node
                    && ((t.relation == "originate" || t.relation == "advRoute") && t.str_arg(0) == Some(prefix))
            })
            .collect();
        if !candidates.is_empty() {
            // Some candidate exists, yet no matching route is selected.  If
            // the pattern is fully open this should be impossible for an
            // honest node; with concrete path/via arguments the selection
            // legitimately picked a different candidate.
            let open = pattern.args.iter().skip(1).all(Value::is_wild);
            witnesses.push(if open {
                AbsenceWitness::Derivable {
                    rule: "bgp-select".into(),
                }
            } else {
                AbsenceWitness::ConstraintFailed {
                    rule: "bgp-select".into(),
                }
            });
            return witnesses;
        }
        witnesses.push(AbsenceWitness::MissingLocal {
            rule: "bgp-select".into(),
            missing: originate(self.node, prefix),
        });
        for (neighbor, _) in Self::neighbors_in(self.node, present) {
            witnesses.push(AbsenceWitness::NeverReceived {
                rule: "bgp-export".into(),
                tuple: adv_route_pattern(self.node, prefix, neighbor),
                senders: vec![neighbor],
            });
        }
        witnesses
    }

    /// Why did this AS never advertise `prefix` to `peer`?  Either it has no
    /// route itself (recurse), or its export policy legitimately withheld
    /// the route (Gao–Rexford, or no back-propagation to the next hop).
    fn absent_export(&self, prefix: &str, peer: NodeId, present: &[Tuple]) -> Vec<AbsenceWitness> {
        let selected = present
            .iter()
            .find(|t| t.relation == "route" && t.location == self.node && t.str_arg(0) == Some(prefix));
        let Some(selected) = selected else {
            return vec![AbsenceWitness::MissingLocal {
                rule: "bgp-export".into(),
                missing: route_pattern(self.node, prefix),
            }];
        };
        let Some(via) = selected.node_arg(2) else {
            return vec![AbsenceWitness::ConstraintFailed {
                rule: "bgp-export".into(),
            }];
        };
        if via == peer {
            // At most one route per prefix per neighbor, and never back to
            // the AS the route came from.
            return vec![AbsenceWitness::ConstraintFailed {
                rule: "bgp-no-reexport-to-nexthop".into(),
            }];
        }
        let neighbors = Self::neighbors_in(self.node, present);
        let originated = via == self.node;
        let learned = neighbors
            .iter()
            .find(|(n, _)| *n == via)
            .map(|(_, r)| *r)
            .unwrap_or(Relation::Customer);
        let to_relation = neighbors.iter().find(|(n, _)| *n == peer).map(|(_, r)| *r);
        match to_relation {
            None => vec![AbsenceWitness::MissingLocal {
                rule: "bgp-export".into(),
                missing: Tuple::new("neighbor", self.node, vec![Value::Node(peer), Value::Wild]),
            }],
            Some(to_relation) if self.may_export(learned, to_relation, originated) => {
                // Policy says the route should have been exported; its
                // absence on the wire is unaccounted for.
                vec![AbsenceWitness::Derivable {
                    rule: "bgp-export".into(),
                }]
            }
            Some(_) => vec![AbsenceWitness::ConstraintFailed {
                rule: "bgp-export-policy".into(),
            }],
        }
    }

    fn affected_prefix(tuple: &Tuple) -> Option<String> {
        match tuple.relation.as_str() {
            "originate" | "prefer" | "advRoute" => tuple.str_arg(0).map(|s| s.to_string()),
            _ => None,
        }
    }

    fn all_known_prefixes(&self) -> BTreeSet<String> {
        self.tuples.iter().filter_map(Self::affected_prefix).collect()
    }
}

impl StateMachine for BgpSpeaker {
    fn handle(&mut self, input: SmInput) -> Vec<SmOutput> {
        let mut out = Vec::new();
        let (tuple, added) = match input {
            SmInput::InsertBase(t) => (t, true),
            SmInput::DeleteBase(t) => (t, false),
            SmInput::Receive { delta, .. } => {
                let added = delta.polarity == Polarity::Plus;
                (delta.tuple, added)
            }
        };
        if added {
            self.tuples.insert(tuple.clone());
        } else {
            self.tuples.remove(&tuple);
        }
        match Self::affected_prefix(&tuple) {
            Some(prefix) => self.refresh_prefix(&prefix, &mut out),
            None => {
                // A neighbor change affects every prefix.
                let prefixes = self.all_known_prefixes();
                for prefix in prefixes {
                    self.refresh_prefix(&prefix, &mut out);
                }
            }
        }
        out
    }

    fn fresh(&self) -> Box<dyn StateMachine> {
        Box::new(BgpSpeaker::new(self.node))
    }

    fn current_tuples(&self) -> Vec<Tuple> {
        let mut all: Vec<Tuple> = self.tuples.iter().cloned().collect();
        all.extend(self.selected.values().map(|(t, _)| t.clone()));
        all
    }

    /// The snapshot covers the visible tuple set, the selected best routes
    /// (with their justifying candidates) and the export table — everything
    /// that influences how the speaker reacts to future updates.
    fn snapshot(&self) -> Option<Vec<u8>> {
        let mut w = snp_datalog::SnapshotWriter::new();
        w.u64(self.tuples.len() as u64);
        for tuple in &self.tuples {
            w.tuple(tuple);
        }
        w.u64(self.selected.len() as u64);
        for (prefix, (route_tuple, candidate)) in &self.selected {
            w.str(prefix);
            w.tuple(route_tuple);
            w.u64(candidate.path.len() as u64);
            for hop in &candidate.path {
                w.node(*hop);
            }
            w.node(candidate.via);
            w.str(candidate.relation.as_str());
            w.tuple(&candidate.witness);
        }
        w.u64(self.exported.len() as u64);
        for ((peer, prefix), adv) in &self.exported {
            w.node(*peer);
            w.str(prefix);
            w.tuple(adv);
        }
        Some(w.finish())
    }

    fn restore(&self, snapshot: &[u8]) -> Result<Box<dyn StateMachine>, String> {
        let mut r = snp_datalog::SnapshotReader::new(snapshot);
        let mut machine = BgpSpeaker::new(self.node);
        (|| {
            let tuples = r.read_len()?;
            for _ in 0..tuples {
                machine.tuples.insert(r.tuple()?);
            }
            let selected = r.read_len()?;
            for _ in 0..selected {
                let prefix = r.str()?;
                let route_tuple = r.tuple()?;
                let hops = r.read_len()?;
                let mut path = Vec::with_capacity(hops);
                for _ in 0..hops {
                    path.push(r.node()?);
                }
                let via = r.node()?;
                let relation_name = r.str()?;
                let relation = Relation::from_str(&relation_name)
                    .ok_or_else(|| snp_datalog::SnapshotError(format!("unknown relation {relation_name:?}")))?;
                let witness = r.tuple()?;
                machine.selected.insert(
                    prefix,
                    (
                        route_tuple,
                        Candidate {
                            path,
                            via,
                            relation,
                            witness,
                        },
                    ),
                );
            }
            let exported = r.read_len()?;
            for _ in 0..exported {
                let peer = r.node()?;
                let prefix = r.str()?;
                let adv = r.tuple()?;
                machine.exported.insert((peer, prefix), adv);
            }
            r.expect_exhausted()
        })()
        .map_err(|e: snp_datalog::SnapshotError| e.to_string())?;
        Ok(Box::new(machine))
    }

    /// Negative provenance for the BGP proxy's external specification: a
    /// missing `route` is traced to the missing origination and the
    /// advertisements never received from each neighbor; a missing
    /// `advRoute` (asked of the would-be advertiser) is traced to its own
    /// missing route or to the export policy that legitimately withheld it.
    fn absence_of(&self, pattern: &Tuple, present: &[Tuple], _peers: &[NodeId]) -> Vec<AbsenceWitness> {
        match pattern.relation.as_str() {
            "route" if pattern.location == self.node => match pattern.str_arg(0) {
                Some(prefix) => self.absent_route(pattern, prefix, present),
                None => Vec::new(),
            },
            "advRoute" if pattern.node_arg(2) == Some(self.node) && pattern.location != self.node => {
                match pattern.str_arg(0) {
                    Some(prefix) => self.absent_export(prefix, pattern.location, present),
                    None => Vec::new(),
                }
            }
            // Base tuples: never inserted is the whole explanation.
            "originate" | "neighbor" | "prefer" => vec![AbsenceWitness::NoBaseInsertion],
            _ => Vec::new(),
        }
    }

    fn name(&self) -> String {
        format!("bgp-as@{}", self.node)
    }
}

// ---- scenarios -------------------------------------------------------------------

/// The Quagga-style experiment configuration (§7.1: 35 daemons, 10 ASes,
/// RouteViews-driven updates).  The topology here is a provider/customer/peer
/// hierarchy over `ases` ASes.
#[derive(Clone, Copy, Debug)]
pub struct BgpScenario {
    /// Number of ASes.
    pub ases: u64,
    /// Number of distinct prefixes churned by the synthetic RouteViews trace.
    pub prefixes: usize,
    /// Number of announce/withdraw updates injected.
    pub updates: usize,
    /// Simulated duration in seconds.
    pub duration_s: u64,
}

impl BgpScenario {
    /// A scaled-down version of the paper's Quagga setup.
    pub fn quagga_like() -> BgpScenario {
        BgpScenario {
            ases: 10,
            prefixes: 40,
            updates: 400,
            duration_s: 120,
        }
    }

    /// AS ids (1..=ases).
    pub fn as_ids(&self) -> Vec<NodeId> {
        (1..=self.ases).map(NodeId).collect()
    }

    /// A mixed provider/customer/peer topology: AS 1 and 2 are tier-1 peers;
    /// every other AS `i` buys transit from `i/2` (its provider), and
    /// consecutive stubs peer with each other.
    pub fn topology(&self) -> Vec<(NodeId, NodeId, Relation)> {
        let mut links = Vec::new();
        if self.ases >= 2 {
            links.push((NodeId(1), NodeId(2), Relation::Peer));
        }
        for i in 3..=self.ases {
            let provider = NodeId((i / 2).max(1));
            links.push((NodeId(i), provider, Relation::Provider));
        }
        for i in (3..self.ases).step_by(2) {
            links.push((NodeId(i), NodeId(i + 1), Relation::Peer));
        }
        links
    }

    /// The deployable application: the AS topology, optionally with the
    /// synthetic RouteViews-like update trace as workload.
    pub fn app(&self, with_updates: bool) -> BgpApp {
        BgpApp {
            scenario: *self,
            with_updates,
        }
    }

    /// Build a deployment with the topology installed (no updates yet).
    pub fn build(&self, secure: bool, seed: u64) -> Deployment {
        Deployment::builder()
            .seed(seed)
            .secure(secure)
            .app(self.app(false))
            .build()
    }

    /// The synthetic RouteViews-like update trace: random ASes originate and
    /// withdraw prefixes over the run.
    pub fn update_trace(&self, seed: u64) -> Vec<WorkloadEvent> {
        let mut rng = DetRng::new(seed ^ 0xbeef);
        let ases = self.as_ids();
        let mut originated: Vec<(NodeId, String)> = Vec::new();
        let mut events = Vec::new();
        for u in 0..self.updates {
            let at = SimTime::from_millis(1_000 + (u as u64 * self.duration_s * 1_000) / self.updates.max(1) as u64);
            let withdraw = !originated.is_empty() && rng.chance(0.3);
            if withdraw {
                // Lossless: `next_below(len)` is below `len`, itself a usize.
                #[allow(clippy::cast_possible_truncation)]
                let idx = rng.next_below(originated.len() as u64) as usize;
                let (asn, prefix) = originated.remove(idx);
                events.push(WorkloadEvent::delete(at, asn, originate(asn, &prefix)));
            } else {
                let asn = *rng.choose(&ases).expect("non-empty");
                let prefix = format!("10.{}.0.0/16", rng.next_below(self.prefixes as u64));
                events.push(WorkloadEvent::insert(at, asn, originate(asn, &prefix)));
                originated.push((asn, prefix));
            }
        }
        events
    }

    /// Inject the update trace into an already-built deployment.
    pub fn inject_updates(&self, deployment: &mut Deployment, seed: u64) {
        for event in self.update_trace(seed) {
            deployment.schedule(event);
        }
    }
}

/// The deployable BGP application: speakers over the [`BgpScenario`]
/// topology, each behind a proxy, plus (optionally) the update trace.
#[derive(Debug)]
pub struct BgpApp {
    /// The experiment parameters.
    pub scenario: BgpScenario,
    /// Whether the RouteViews-like update trace is part of the workload.
    pub with_updates: bool,
}

impl Application for BgpApp {
    fn name(&self) -> String {
        format!("bgp-{}", self.scenario.ases)
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.scenario.as_ids()
    }

    fn node(&self, id: NodeId) -> AppNode {
        // The paper's proxy re-encodes BGP messages as tuples; charge a small
        // constant per message (Figure 5's "Proxy" component).
        AppNode::new(Box::new(BgpSpeaker::new(id))).proxy_overhead(24)
    }

    fn workload(&self, seed: u64) -> Vec<WorkloadEvent> {
        let mut events = Vec::new();
        for (i, (a, b, rel_ab)) in self.scenario.topology().into_iter().enumerate() {
            let at = SimTime::from_millis(5 + i as u64);
            let rel_ba = match rel_ab {
                Relation::Provider => Relation::Customer,
                Relation::Customer => Relation::Provider,
                Relation::Peer => Relation::Peer,
            };
            events.push(WorkloadEvent::insert(at, a, neighbor(a, b, rel_ab)));
            events.push(WorkloadEvent::insert(at, b, neighbor(b, a, rel_ba)));
        }
        if self.with_updates {
            events.extend(self.scenario.update_trace(seed));
        }
        events
    }

    fn program(&self) -> Option<String> {
        Some(BGP_PROGRAM.into())
    }
}

/// Build the classic BadGadget gadget \[11\]: ASes 1, 2, 3 around destination
/// AS 0 (here AS 4 to keep ids positive), where each of the three prefers the
/// route through its clockwise neighbor over its direct route.
///
/// The gadget is *designed* to diverge, and over the simulator's FIFO links
/// it flutters persistently — the speakers have no MRAI-style damping, so
/// the flap rate is limited only by link latency and the event count grows
/// steeply with the horizon.  Run it for a bounded sub-second window (the
/// callers use ~600 ms); the provenance assertions hold at any instant of
/// the flutter.
pub fn badgadget_scenario(secure: bool, seed: u64) -> (Deployment, NodeId, String) {
    let dest = NodeId(4);
    let prefix = "203.0.113.0/24".to_string();
    let mut builder = Deployment::builder().seed(seed).secure(secure);
    for i in 1..=4u64 {
        builder = builder.node(NodeId(i), |id| Box::new(BgpSpeaker::new(id)));
    }
    let at = SimTime::from_millis(5);
    // Everyone peers with everyone (so export policies do not filter).
    for (a, b) in [(1u64, 2u64), (2, 3), (3, 1), (1, 4), (2, 4), (3, 4)] {
        builder = builder
            .insert_at(at, NodeId(a), neighbor(NodeId(a), NodeId(b), Relation::Customer))
            .insert_at(at, NodeId(b), neighbor(NodeId(b), NodeId(a), Relation::Customer));
    }
    let tb = builder
        // The cyclic preferences: 1 prefers via 2, 2 prefers via 3, 3 prefers via 1.
        .insert_at(at, NodeId(1), prefer(NodeId(1), &prefix, NodeId(2)))
        .insert_at(at, NodeId(2), prefer(NodeId(2), &prefix, NodeId(3)))
        .insert_at(at, NodeId(3), prefer(NodeId(3), &prefix, NodeId(1)))
        // The destination originates the prefix.
        .insert_at(SimTime::from_millis(50), dest, originate(dest, &prefix))
        .build();
    (tb, dest, prefix)
}

/// Build the Quagga-Disappear scenario (§7.2, after Teixeira et al.): AS `j`
/// first reaches the prefix through its customer and exports it to its peer
/// `i`; when a shorter route appears at `j` via its *provider*, `j` switches
/// to it and — because provider routes are not exported to peers — withdraws
/// the route from `i`, whose routing-table entry disappears.
pub fn disappear_scenario(secure: bool, seed: u64) -> (Deployment, NodeId, NodeId, String) {
    let prefix = "198.51.100.0/24".to_string();
    let i = NodeId(1); // the AS that observes the disappearance
    let j = NodeId(2); // the AS whose policy causes it
    let customer = NodeId(3); // j's customer, original path to the origin
    let provider = NodeId(4); // j's provider, later offers a better route
    let origin = NodeId(5); // the prefix owner, customer of 3 and of 4

    let mut builder = Deployment::builder().seed(seed).secure(secure);
    for n in [i, j, customer, provider, origin] {
        builder = builder.node(n, |id| Box::new(BgpSpeaker::new(id)));
    }
    let at = SimTime::from_millis(5);
    let pairs = [
        (i, j, Relation::Peer),
        (j, customer, Relation::Customer),
        (j, provider, Relation::Provider),
        (customer, origin, Relation::Customer),
        (provider, origin, Relation::Customer),
    ];
    for (a, b, rel_ab) in pairs {
        let rel_ba = match rel_ab {
            Relation::Provider => Relation::Customer,
            Relation::Customer => Relation::Provider,
            Relation::Peer => Relation::Peer,
        };
        builder = builder
            .insert_at(at, a, neighbor(a, b, rel_ab))
            .insert_at(at, b, neighbor(b, a, rel_ba));
    }
    // Phase 1: the origin announces the prefix; it reaches i via
    // origin → customer → j → i (customer routes are exported to peers).
    // Phase 2 happens later (see [`disappear_trigger`]): a policy change makes
    // j prefer the provider route, which it may NOT export to its peer i, so
    // the route disappears from i.
    let tb = builder
        .insert_at(SimTime::from_millis(100), origin, originate(origin, &prefix))
        .build();
    (tb, i, j, prefix)
}

/// Second phase of the disappear scenario: a traffic-engineering decision at
/// AS `j` (AS 2) makes it prefer the route through its provider (AS 4).  The
/// provider route may not be exported to peers, so AS 1 receives a
/// withdrawal — the event the Quagga-Disappear query investigates.
pub fn disappear_trigger(tb: &mut Deployment, at: SimTime) {
    let j = NodeId(2);
    let provider = NodeId(4);
    let prefix = "198.51.100.0/24";
    tb.insert_at(at, j, prefer(j, prefix, provider));
}

/// Build the BGP *blackhole* scenario for the negative query "why does my
/// BGP table have no route to prefix P?": the origin (AS 3, a customer of
/// the transit AS 2) announces the prefix, and the transit AS — whose
/// export policy says peers *do* get customer routes — silently withholds
/// its advertisement to the victim peer (AS 1) when `suppress` is set.  The
/// victim's table simply has no route; only `why_absent` can show that the
/// transit logged state obliging it to advertise and never delivered.
///
/// Returns the deployment, the victim, the transit AS and the prefix.
pub fn blackhole_scenario(secure: bool, seed: u64, suppress: bool) -> (Deployment, NodeId, NodeId, String) {
    let victim = NodeId(1);
    let transit = NodeId(2);
    let origin = NodeId(3);
    let prefix = "203.0.113.0/24".to_string();
    let mut builder = Deployment::builder().seed(seed).secure(secure);
    for n in [victim, transit, origin] {
        builder = builder.node(n, |id| Box::new(BgpSpeaker::new(id)));
    }
    let at = SimTime::from_millis(5);
    builder = builder
        .insert_at(at, victim, neighbor(victim, transit, Relation::Peer))
        .insert_at(at, transit, neighbor(transit, victim, Relation::Peer))
        .insert_at(at, transit, neighbor(transit, origin, Relation::Customer))
        .insert_at(at, origin, neighbor(origin, transit, Relation::Provider));
    if suppress {
        builder = builder.byzantine(transit, snp_core::ByzantineConfig::suppressing(victim));
    }
    let tb = builder
        .insert_at(SimTime::from_millis(100), origin, originate(origin, &prefix))
        .build();
    (tb, victim, transit, prefix)
}

#[cfg(test)]
mod tests {

    #[test]
    fn declared_program_is_lint_clean_against_the_workload() {
        use snp_core::deploy::WorkloadOp;
        let app = BgpScenario::quagga_like().app(true);
        let rules = snp_datalog::parser::parse_program(BGP_PROGRAM).expect("program parses");
        let facts: Vec<Tuple> = app
            .workload(7)
            .into_iter()
            .map(|e| match e.op {
                WorkloadOp::Insert(t) | WorkloadOp::Delete(t) => t,
            })
            .collect();
        for d in snp_datalog::analyze_with_facts(&rules, &facts) {
            assert!(d.severity < snp_datalog::Severity::Warning, "{}", d.render());
        }
    }

    use super::*;

    #[test]
    fn routes_propagate_through_the_hierarchy() {
        let scenario = BgpScenario {
            ases: 6,
            prefixes: 2,
            updates: 0,
            duration_s: 10,
        };
        let mut tb = scenario.build(true, 1);
        let prefix = "10.0.0.0/16";
        tb.insert_at(SimTime::from_millis(500), NodeId(6), originate(NodeId(6), prefix));
        tb.run_until(SimTime::from_secs(30));
        // Every AS should end up with a route to the prefix (customer routes
        // are exported upward and then back down).
        for asn in scenario.as_ids() {
            if asn == NodeId(6) {
                continue;
            }
            let has_route = tb.handles[&asn]
                .with(|n| n.current_tuples())
                .iter()
                .any(|t| t.relation == "route" && t.str_arg(0) == Some(prefix));
            assert!(has_route, "AS {asn} must have a route to {prefix}");
        }
    }

    #[test]
    fn export_policy_respects_gao_rexford() {
        // origin (customer of 2) announces; 2 exports to everyone; but a route
        // learned from its *peer* 1 must not be exported to its other peer.
        let speaker = BgpSpeaker::new(NodeId(2));
        assert!(speaker.may_export(Relation::Customer, Relation::Peer, false));
        assert!(speaker.may_export(Relation::Customer, Relation::Provider, false));
        assert!(!speaker.may_export(Relation::Peer, Relation::Peer, false));
        assert!(!speaker.may_export(Relation::Provider, Relation::Peer, false));
        assert!(speaker.may_export(Relation::Provider, Relation::Customer, false));
        assert!(
            speaker.may_export(Relation::Peer, Relation::Peer, true),
            "originated routes go everywhere"
        );
    }

    #[test]
    fn withdrawals_remove_routes() {
        let scenario = BgpScenario {
            ases: 4,
            prefixes: 1,
            updates: 0,
            duration_s: 10,
        };
        let mut tb = scenario.build(true, 2);
        let prefix = "10.1.0.0/16";
        tb.insert_at(SimTime::from_millis(500), NodeId(4), originate(NodeId(4), prefix));
        tb.delete_at(SimTime::from_secs(10), NodeId(4), originate(NodeId(4), prefix));
        tb.run_until(SimTime::from_secs(30));
        for asn in scenario.as_ids() {
            let has_route = tb.handles[&asn]
                .with(|n| n.current_tuples())
                .iter()
                .any(|t| t.relation == "route" && t.str_arg(0) == Some(prefix));
            assert!(!has_route, "AS {asn} must have withdrawn the route");
        }
    }

    #[test]
    fn disappear_scenario_explains_the_withdrawal() {
        let (mut tb, i, j, prefix) = disappear_scenario(true, 3);
        tb.run_until(SimTime::from_secs(20));
        // Phase 1: i has the route via j.
        let had_route = tb.handles[&i]
            .with(|n| n.current_tuples())
            .iter()
            .any(|t| t.relation == "route" && t.str_arg(0) == Some(prefix.as_str()));
        assert!(had_route, "AS {i} must first learn the route via {j}");

        disappear_trigger(&mut tb, SimTime::from_secs(25));
        tb.run_until(SimTime::from_secs(60));
        let still_has = tb.handles[&i]
            .with(|n| n.current_tuples())
            .iter()
            .any(|t| t.relation == "route" && t.str_arg(0) == Some(prefix.as_str()));
        assert!(!still_has, "the route at {i} must have disappeared");

        // Dynamic query: why did the advertised route disappear from i?
        let gone = tb.handles[&i]
            .with(|n| n.current_tuples())
            .iter()
            .find(|t| t.relation == "advRoute" && t.str_arg(0) == Some(prefix.as_str()))
            .cloned();
        assert!(gone.is_none());
        // Query the disappearance of the believed advertisement from j.
        let result = tb
            .querier
            .why_disappeared(adv_route(i, &prefix, &[j, NodeId(3), NodeId(5)], j))
            .at(i)
            .run();
        assert!(result.root.is_some(), "the believe-disappear vertex must be found");
        assert!(
            result.implicated_nodes().is_empty(),
            "a policy-driven withdrawal is not a fault"
        );
        // The explanation crosses into AS j.
        let touches_j = result
            .traversal
            .as_ref()
            .unwrap()
            .depths
            .keys()
            .any(|id| result.graph.vertex(id).map(|v| v.host() == j).unwrap_or(false));
        assert!(
            touches_j,
            "the withdrawal must be traced into AS {j}:\n{}",
            result.render()
        );
    }

    #[test]
    fn badgadget_routes_flutter_or_converge_with_provenance() {
        let (mut tb, dest, prefix) = badgadget_scenario(true, 5);
        // Bounded horizon: the gadget never converges, and over FIFO links
        // the flutter sustains itself indefinitely (see badgadget_scenario).
        tb.run_until(SimTime::from_millis(600));
        // Whatever the current flap state, node 1 must have processed
        // announcements, and the provenance of its current route must reach
        // the destination's originate tuple.
        let node1_routes: Vec<Tuple> = tb.handles[&NodeId(1)]
            .with(|n| n.current_tuples())
            .into_iter()
            .filter(|t| t.relation == "route" && t.str_arg(0) == Some(prefix.as_str()))
            .collect();
        assert!(
            !node1_routes.is_empty(),
            "AS 1 must have a route to the BadGadget prefix"
        );
        let result = tb.querier.why_exists(node1_routes[0].clone()).at(NodeId(1)).run();
        assert!(result.root.is_some());
        let reaches_origin = result.traversal.as_ref().unwrap().depths.keys().any(|id| {
            result
                .graph
                .vertex(id)
                .map(|v| v.host() == dest && v.kind.tuple().relation == "originate")
                .unwrap_or(false)
        });
        assert!(
            reaches_origin,
            "route provenance must reach the origin AS:\n{}",
            result.render()
        );
        assert!(
            result.implicated_nodes().is_empty(),
            "BadGadget is a configuration problem, not node misbehavior"
        );
    }

    #[test]
    fn fabricated_route_announcement_is_traced_to_the_hijacker() {
        // Route hijacking: AS 3 advertises a prefix it does not own and has no
        // route to (prefix hijack), by fabricating an advRoute notification.
        let scenario = BgpScenario {
            ases: 4,
            prefixes: 1,
            updates: 0,
            duration_s: 10,
        };
        let mut tb = scenario.build(true, 7);
        let prefix = "192.0.2.0/24";
        let hijacker = NodeId(3);
        let victim_view = NodeId(1); // 3's provider is 1
        tb.set_byzantine(
            hijacker,
            snp_core::ByzantineConfig::fabricating(
                victim_view,
                TupleDelta::plus(adv_route(victim_view, prefix, &[hijacker], hijacker)),
            ),
        )
        .expect("deployed node");
        tb.run_until(SimTime::from_secs(30));
        let bogus_route = tb.handles[&victim_view]
            .with(|n| n.current_tuples())
            .into_iter()
            .find(|t| t.relation == "route" && t.str_arg(0) == Some(prefix));
        let bogus_route = bogus_route.expect("the hijacked route must be installed at AS 1");
        let result = tb.querier.why_exists(bogus_route).at(victim_view).run();
        assert!(
            result.implicated_nodes().contains(&hijacker),
            "the hijacker must be implicated: {:?}",
            result.implicated_nodes()
        );
        assert!(!result.implicated_nodes().contains(&victim_view));
    }

    #[test]
    fn blackhole_why_absent_implicates_the_withholding_transit() {
        let (mut tb, victim, transit, prefix) = blackhole_scenario(true, 21, true);
        tb.run_until(SimTime::from_secs(30));
        let has_route = tb.handles[&victim]
            .with(|n| n.current_tuples())
            .iter()
            .any(|t| t.relation == "route" && t.str_arg(0) == Some(prefix.as_str()));
        assert!(!has_route, "the victim must be blackholed");

        let result = tb.querier.why_absent(route_pattern(victim, &prefix)).at(victim).run();
        assert!(result.root.is_some(), "the absence must be explained");
        assert!(!result.is_legitimate(), "a withheld advertisement is not clean");
        assert!(
            result.implicated_nodes().contains(&transit),
            "the withholding transit must be implicated: {:?}",
            result.implicated_nodes()
        );
        assert!(
            !result.implicated_nodes().contains(&victim) && !result.implicated_nodes().contains(&NodeId(3)),
            "correct ASes must not be implicated"
        );
        // The transit's undelivered advertisement shows up as red evidence.
        let red_send = result.vertices().any(|v| {
            matches!(&v.kind, snp_graph::VertexKind::Send { node, .. } if *node == transit)
                && v.color == snp_graph::Color::Red
        });
        assert!(red_send, "signed evidence of the withheld send:\n{}", result.render());
    }

    #[test]
    fn blackhole_why_absent_is_legitimate_when_nothing_was_announced() {
        // Same topology, no suppression and no origination: the absence is
        // genuine and must be fully explained without implicating anyone.
        let victim = NodeId(1);
        let transit = NodeId(2);
        let origin = NodeId(3);
        let prefix = "203.0.113.0/24";
        let mut builder = Deployment::builder().seed(4).secure(true);
        for n in [victim, transit, origin] {
            builder = builder.node(n, |id| Box::new(BgpSpeaker::new(id)));
        }
        let at = SimTime::from_millis(5);
        let mut tb = builder
            .insert_at(at, victim, neighbor(victim, transit, Relation::Peer))
            .insert_at(at, transit, neighbor(transit, victim, Relation::Peer))
            .insert_at(at, transit, neighbor(transit, origin, Relation::Customer))
            .insert_at(at, origin, neighbor(origin, transit, Relation::Provider))
            .build();
        tb.run_until(SimTime::from_secs(10));
        let result = tb.querier.why_absent(route_pattern(victim, prefix)).at(victim).run();
        assert!(result.root.is_some());
        assert!(
            result.is_legitimate(),
            "a never-announced prefix is a clean absence:\n{}",
            result.render()
        );
        assert!(result.implicated_nodes().is_empty());
        // The recursion walked through the transit to the origin's missing
        // origination.
        assert!(result.audits.contains_key(&transit));
        let reaches_missing_originate = result
            .vertices()
            .any(|v| matches!(&v.kind, snp_graph::VertexKind::Absence { tuple, .. } if tuple.relation == "originate"));
        assert!(
            reaches_missing_originate,
            "the absence must bottom out at a missing origination:\n{}",
            result.render()
        );
    }

    #[test]
    fn quagga_like_trace_generates_traffic() {
        let scenario = BgpScenario {
            ases: 10,
            prefixes: 10,
            updates: 60,
            duration_s: 30,
        };
        let mut tb = scenario.build(true, 11);
        scenario.inject_updates(&mut tb, 11);
        tb.run_until(SimTime::from_secs(60));
        let traffic = tb.total_traffic();
        assert!(
            traffic.data_messages > 50,
            "update churn must generate BGP traffic, got {}",
            traffic.data_messages
        );
        assert!(traffic.proxy_bytes > 0, "proxy overhead must be accounted");
    }
}

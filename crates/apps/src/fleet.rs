//! The real-fleet demo application (ISSUE 9).
//!
//! A deliberately small workload for exercising SNooPy outside the
//! simulator: a *single* router evaluating the MinCost rules (§3.3) over
//! links the operator injects at runtime.  Because both `cost` and
//! `bestCost` derive locally from `link` base tuples, one node suffices for
//! an end-to-end provenance audit — which keeps the two-process loopback
//! demo (`examples/real_fleet.rs`) down to exactly one peer process and one
//! querier process, while still covering the full pipeline: durable
//! segments, signed checkpoints, anchored retrieval over the audit RPC,
//! replay, and tamper conviction.
//!
//! The same application runs unchanged in the simulator (the integration
//! tests deploy it there), so fleet behaviour can always be
//! differential-tested against the deterministic substrate.

use crate::mincost::{self, mincost_rules};
use snp_core::deploy::{AppNode, Application, WorkloadEvent};
use snp_crypto::keys::NodeId;
use snp_datalog::{Engine, Tuple, Value};

/// The node the demo peer process hosts.
pub const PEER: NodeId = NodeId(1);
/// The destination "router" the demo links point at (never deployed — it
/// only appears inside tuples, like an external prefix in BGP).
pub const DEST: NodeId = NodeId(4);

/// A `link(@PEER, y, cost)` base tuple — what the operator injects.
pub fn peer_link(y: NodeId, cost: i64) -> Tuple {
    mincost::link(PEER, y, cost)
}

/// The `bestCost(@PEER, DEST, cost)` tuple the demo queries for.
pub fn peer_best_cost(cost: i64) -> Tuple {
    Tuple::new("bestCost", PEER, vec![Value::Node(DEST), Value::Int(cost)])
}

/// The single-router fleet demo application.
#[derive(Debug)]
pub struct FleetDemo {
    node: NodeId,
}

impl FleetDemo {
    /// The demo on its default node, [`PEER`].
    pub fn new() -> FleetDemo {
        FleetDemo { node: PEER }
    }

    /// The demo hosted on a specific node id.
    pub fn on(node: NodeId) -> FleetDemo {
        FleetDemo { node }
    }
}

impl Default for FleetDemo {
    fn default() -> FleetDemo {
        FleetDemo::new()
    }
}

impl Application for FleetDemo {
    fn name(&self) -> String {
        "fleet-demo".into()
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.node]
    }

    fn node(&self, id: NodeId) -> AppNode {
        AppNode::new(Box::new(Engine::new(id, mincost_rules())))
    }

    // No scheduled workload: in fleet mode the operator drives the node
    // over the wire (`SnoopyWire::Operator` frames), and the simulator
    // tests inject the same tuples explicitly.
    fn workload(&self, _seed: u64) -> Vec<WorkloadEvent> {
        Vec::new()
    }

    // The demo evaluates the MinCost rules verbatim, so its declared
    // program is MinCost's — `build_fleet_node` statically re-checks it
    // before bringing the peer process up.
    fn program(&self) -> Option<String> {
        Some(mincost::MINCOST_PROGRAM.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_core::Deployment;
    use snp_sim::SimTime;

    #[test]
    fn demo_derives_best_cost_in_the_simulator() {
        let mut deployment = Deployment::builder()
            .seed(1)
            .app(FleetDemo::new())
            .insert_at(SimTime::from_millis(10), PEER, peer_link(DEST, 5))
            .insert_at(SimTime::from_millis(20), PEER, peer_link(NodeId(3), 9))
            .build();
        deployment.run_until(SimTime::from_secs(2));
        let result = deployment.querier.why_exists(peer_best_cost(5)).at(PEER).run();
        assert!(result.is_legitimate(), "{}", result.render());
    }
}

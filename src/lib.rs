//! # snp — Secure Network Provenance
//!
//! Facade crate that re-exports the whole SNP / SNooPy workspace:
//!
//! * [`crypto`] — hashing, signatures, hash chains, Merkle trees.
//! * [`sim`] — deterministic discrete-event network simulator.
//! * [`datalog`] — tuples, derivation rules and the deterministic per-node engine.
//! * [`graph`] — the provenance graph model and the graph construction algorithm.
//! * [`log`] — the tamper-evident log, authenticators and the commitment protocol.
//! * [`core`] — the SNooPy runtime: graph recorder, microqueries and macroqueries.
//! * [`apps`] — example applications: MinCost routing, Chord, MapReduce and BGP.
//! * [`check`] — bounded explicit-state model checker for the evidence invariants.
//! * [`rulecheck`] — static rule-program lint tooling (the `snp_rulelint` CLI).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]
// Unit tests may unwrap: a panic is the assertion.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::cast_possible_truncation))]

pub use snp_apps as apps;
pub use snp_check as check;
pub use snp_core as core;
pub use snp_crypto as crypto;
pub use snp_datalog as datalog;
pub use snp_graph as graph;
pub use snp_log as log;
pub use snp_rulecheck as rulecheck;
pub use snp_sim as sim;

/// Crate version of the facade, re-exported for convenience.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

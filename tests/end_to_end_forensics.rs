//! End-to-end integration tests: the SNP guarantees (§4.3) across the whole
//! stack — simulator, datalog engine, SNooPy nodes, tamper-evident logs,
//! querier — on the example applications.

// Test code may unwrap: a panic is the assertion.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use snp::apps::bgp;
use snp::apps::mincost;
use snp::core::properties::{check_accuracy, check_completeness, check_forensics};
use snp::core::ByzantineConfig;
use snp::crypto::keys::NodeId;
use snp::datalog::TupleDelta;
use snp::sim::SimTime;
use std::collections::BTreeSet;

#[test]
fn clean_mincost_run_satisfies_accuracy_and_legitimacy() {
    let mut tb = mincost::build_scenario(true, 1);
    tb.run_until(SimTime::from_secs(30));
    let result = tb
        .querier
        .why_exists(mincost::best_cost(mincost::C, mincost::D, 5))
        .at(mincost::C)
        .run();
    assert!(
        check_forensics(&result, &BTreeSet::new()).is_ok(),
        "{}",
        result.render()
    );
    assert!(check_accuracy(&result.graph, &BTreeSet::new()).is_ok());
}

#[test]
fn route_hijack_is_detected_without_framing_correct_nodes() {
    let scenario = bgp::BgpScenario {
        ases: 6,
        prefixes: 2,
        updates: 0,
        duration_s: 20,
    };
    let mut tb = scenario.build(true, 7);
    let hijacker = NodeId(3);
    let victim = NodeId(1);
    let prefix = "192.0.2.0/24";
    tb.set_byzantine(
        hijacker,
        ByzantineConfig::fabricating(
            victim,
            TupleDelta::plus(bgp::adv_route(victim, prefix, &[hijacker], hijacker)),
        ),
    )
    .expect("deployed node");
    tb.run_until(SimTime::from_secs(40));
    let route = tb.handles[&victim]
        .with(|n| n.current_tuples())
        .into_iter()
        .find(|t| t.relation == "route" && t.str_arg(0) == Some(prefix))
        .expect("hijacked route installed");
    let result = tb.querier.why_exists(route).at(victim).run();
    let byzantine: BTreeSet<NodeId> = [hijacker].into();
    assert!(check_completeness(&result, &byzantine).is_ok());
    assert!(check_accuracy(&result.graph, &byzantine).is_ok());
    assert!(check_forensics(&result, &byzantine).is_ok());
}

#[test]
fn suppression_attack_is_detected_on_the_suppressor() {
    // An AS silently stops propagating a route it is obliged to export:
    // passive evasion.  The effect observable at other nodes is the *absence*
    // of updates, but the suppressor's own log betrays it under replay.
    let scenario = bgp::BgpScenario {
        ases: 4,
        prefixes: 1,
        updates: 0,
        duration_s: 20,
    };
    let mut tb = scenario.build(true, 11);
    let suppressor = NodeId(2);
    let starved = NodeId(1);
    let mut cfg = ByzantineConfig::honest();
    cfg.suppress_sends_to.insert(starved);
    tb.set_byzantine(suppressor, cfg).expect("deployed node");
    let prefix = "10.0.0.0/16";
    tb.insert_at(SimTime::from_millis(500), NodeId(4), bgp::originate(NodeId(4), prefix));
    tb.run_until(SimTime::from_secs(40));

    // The starved AS never learns the route.
    let has_route = tb.handles[&starved]
        .with(|n| n.current_tuples())
        .iter()
        .any(|t| t.relation == "route" && t.str_arg(0) == Some(prefix));
    assert!(!has_route, "suppression must starve AS 1");

    // Auditing the suppressor reveals the withheld send.
    let audit = tb.querier.audit(suppressor);
    assert_eq!(
        audit.color,
        snp::graph::Color::Red,
        "the suppressor's replay must reveal the missing send: {:?}",
        audit.notes
    );
    // And auditing an honest node does not.
    let honest_audit = tb.querier.audit(NodeId(4));
    assert_eq!(honest_audit.color, snp::graph::Color::Black);
}

#[test]
fn log_tampering_and_equivocation_are_both_detected() {
    let mut tb = mincost::build_scenario(true, 5);
    tb.run_until(SimTime::from_secs(30));
    // Node B tampers with its log before answering retrieve.
    tb.set_byzantine(
        mincost::B,
        ByzantineConfig {
            tamper_log_drop_entry: Some(1),
            ..Default::default()
        },
    )
    .expect("deployed node");
    let audit = tb.querier.audit(mincost::B);
    assert_eq!(audit.color, snp::graph::Color::Red);

    // Node E equivocates: signs a shortened prefix inconsistent with
    // authenticators that other routers already hold.  No manual cache
    // clearing needed: set_byzantine invalidates the node's cached audit.
    tb.set_byzantine(
        mincost::E,
        ByzantineConfig {
            equivocate_truncate_to: Some(1),
            ..Default::default()
        },
    )
    .expect("deployed node");
    let audit = tb.querier.audit(mincost::E);
    assert_eq!(audit.color, snp::graph::Color::Red, "{:?}", audit.notes);
}

#[test]
fn refusing_to_answer_leaves_yellow_but_still_identifies_a_suspect() {
    let mut tb = mincost::build_scenario(true, 9);
    tb.run_until(SimTime::from_secs(30));
    tb.set_byzantine(
        mincost::B,
        ByzantineConfig {
            refuse_retrieve: true,
            ..Default::default()
        },
    )
    .expect("deployed node");
    let result = tb
        .querier
        .why_exists(mincost::best_cost(mincost::A, mincost::D, 7))
        .at(mincost::A)
        .run();
    // The silent node shows up as a suspect (yellow), and no correct node is
    // implicated.
    assert!(result.implicated_nodes().is_empty() || result.implicated_nodes().iter().all(|n| *n == mincost::B));
    assert!(
        result.suspect_nodes().contains(&mincost::B) || result.is_legitimate(),
        "either the explanation avoided B entirely or B must be a suspect; suspects={:?}",
        result.suspect_nodes()
    );
}

#[test]
fn effects_query_supports_damage_assessment() {
    // After a fault is found, Alice uses a causal (forward) query to find the
    // state derived from a given tuple (§2.2).
    let mut tb = mincost::build_scenario(true, 13);
    tb.run_until(SimTime::from_secs(30));
    let result = tb
        .querier
        .effects_of(mincost::link(mincost::B, mincost::D, 3))
        .at(mincost::B)
        .run();
    assert!(result.root.is_some());
    let hosts: BTreeSet<NodeId> = result
        .traversal
        .as_ref()
        .unwrap()
        .depths
        .keys()
        .filter_map(|id| result.graph.vertex(id).map(|v| v.host()))
        .collect();
    assert!(
        hosts.len() >= 2,
        "the link's effects must span several routers: {hosts:?}"
    );
}

//! Property-style integration tests of the SNP theorems on randomly generated
//! workloads (small MinCost-style deployments with randomized link sets and
//! fault injection).
//!
//! The workloads are generated with the repo's own deterministic RNG
//! (proptest is unavailable in the offline build environment), so every case
//! is reproducible from its seed.

// Test code may unwrap: a panic is the assertion.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use snp::apps::chord::{self, ChordScenario};
use snp::apps::mincost::{link, mincost_rules};
use snp::apps::{bgp, mapreduce};
use snp::core::deploy::Deployment;
use snp::core::properties::{check_accuracy, check_completeness};
use snp::core::query::QueryResult;
use snp::core::ByzantineConfig;
use snp::crypto::keys::NodeId;
use snp::datalog::{Engine, Tuple, Value};
use snp::graph::{Color, VertexKind};
use snp::sim::rng::DetRng;
use snp::sim::{SimDuration, SimTime};
use std::collections::BTreeSet;

/// Build a MinCost deployment over `n` routers with the given undirected
/// links, optionally making one node refuse retrieval or suppress traffic.
fn run_deployment(n: u64, links: &[(u64, u64, i64)], byzantine: Option<(u64, ByzantineConfig)>) -> Deployment {
    let mut builder = Deployment::builder().seed(7).secure(true);
    for i in 1..=n {
        builder = builder.node(NodeId(i), |id| Box::new(Engine::new(id, mincost_rules())));
    }
    if let Some((node, cfg)) = byzantine {
        builder = builder.byzantine(NodeId(node), cfg);
    }
    for (idx, (a, b, cost)) in links.iter().enumerate() {
        let at = SimTime::from_millis(10 + idx as u64);
        builder = builder
            .insert_at(at, NodeId(*a), link(NodeId(*a), NodeId(*b), *cost))
            .insert_at(at, NodeId(*b), link(NodeId(*b), NodeId(*a), *cost));
    }
    let mut deployment = builder.build();
    deployment.run_until(SimTime::from_secs(25));
    deployment
}

/// A random link set over routers `1..=n`: 2–9 links with costs in 1..20,
/// self-loops filtered out.
fn arbitrary_links(rng: &mut DetRng, n: u64) -> Vec<(u64, u64, i64)> {
    let count = 2 + rng.next_below(8) as usize;
    (0..count)
        .map(|_| {
            (
                1 + rng.next_below(n),
                1 + rng.next_below(n),
                1 + rng.next_below(19) as i64,
            )
        })
        .filter(|(a, b, _)| a != b)
        .collect()
}

/// Accuracy (Theorem 5): with no Byzantine nodes, no audit ever comes back
/// red and no red vertex appears anywhere.
#[test]
fn prop_clean_runs_have_no_red_evidence() {
    for case in 0..8u64 {
        let mut rng = DetRng::new(case);
        let links = arbitrary_links(&mut rng, 5);
        let mut tb = run_deployment(5, &links, None);
        for node in 1..=5u64 {
            let audit = tb.querier.audit(NodeId(node));
            assert_eq!(
                audit.color,
                Color::Black,
                "case {case}: audit of correct node {node} was {:?}",
                audit.notes
            );
            let graph = tb.querier.node_graph(NodeId(node));
            assert!(graph.faulty_nodes().is_empty(), "case {case}");
        }
    }
}

/// Completeness (Theorem 6, practical form): querying the state that a
/// suppressing node failed to propagate always leads to red/yellow evidence
/// on that node, and never implicates a correct node.
#[test]
fn prop_explanations_never_implicate_correct_nodes() {
    for case in 0..8u64 {
        let mut rng = DetRng::new(case ^ 0xface);
        let links = arbitrary_links(&mut rng, 4);
        let victim = 1 + rng.next_below(4);
        let mut cfg = ByzantineConfig::honest();
        cfg.refuse_retrieve = true;
        let mut tb = run_deployment(4, &links, Some((victim, cfg)));
        // Query every bestCost tuple that exists anywhere.
        let mut queried = 0;
        for i in 1..=4u64 {
            let tuples = tb.handles[&NodeId(i)].with(|n| n.current_tuples());
            for t in tuples.into_iter().filter(|t| t.relation == "bestCost").take(2) {
                let result = tb.querier.why_exists(t).at(NodeId(i)).run();
                queried += 1;
                let byz: BTreeSet<NodeId> = [NodeId(victim)].into();
                for implicated in result.implicated_nodes() {
                    assert!(
                        byz.contains(&implicated),
                        "case {case}: correct node {implicated} was implicated"
                    );
                }
            }
        }
        assert!(queried > 0 || links.is_empty(), "case {case}");
    }
}

/// The fault injections exercised by the serial/parallel equivalence
/// property: clean runs, Byzantine nodes, and truncated logs must all
/// produce the same answers at every thread count.
#[derive(Clone, Copy, Debug)]
enum Fault {
    None,
    /// One node silently drops a log entry when retrieving (red evidence).
    Tamper(u64),
    /// One node refuses `retrieve` entirely (yellow evidence).
    Refuse(u64),
}

/// Build a MinCost deployment for `case`, run the same macroquery with the
/// given worker count, and return the result.  Everything is derived
/// deterministically from `case`, so two invocations differing only in
/// `threads` observe byte-identical node states.
fn mincost_query(case: u64, fault: Fault, truncate: bool, threads: usize) -> QueryResult {
    let mut rng = DetRng::new(case.wrapping_mul(0x9e37));
    let n = 4;
    let links = arbitrary_links(&mut rng, n);
    let mut builder = Deployment::builder().seed(7).secure(true);
    if truncate {
        builder = builder.epoch_length(SimDuration::from_millis(500)).retain_epochs(2);
    }
    for i in 1..=n {
        builder = builder.node(NodeId(i), |id| Box::new(Engine::new(id, mincost_rules())));
    }
    match fault {
        Fault::None => {}
        Fault::Tamper(node) => {
            builder = builder.byzantine(
                NodeId(node),
                ByzantineConfig {
                    tamper_log_drop_entry: Some(0),
                    ..Default::default()
                },
            );
        }
        Fault::Refuse(node) => {
            builder = builder.byzantine(
                NodeId(node),
                ByzantineConfig {
                    refuse_retrieve: true,
                    ..Default::default()
                },
            );
        }
    }
    for (idx, (a, b, cost)) in links.iter().enumerate() {
        let at = SimTime::from_millis(10 + idx as u64);
        builder = builder
            .insert_at(at, NodeId(*a), link(NodeId(*a), NodeId(*b), *cost))
            .insert_at(at, NodeId(*b), link(NodeId(*b), NodeId(*a), *cost));
    }
    let mut tb = builder.build();
    // Force the thread count past any `SNP_QUERY_THREADS` override: CI runs
    // this suite a second time with the variable set, and the equivalence
    // property is vacuous unless the serial reference really is serial.
    tb.querier.set_query_threads(threads);
    tb.run_until(SimTime::from_secs(25));
    // Query the first bestCost tuple that exists anywhere (deterministic
    // scan order), falling back to a never-derived tuple when the random
    // link set produced nothing.
    let target = (1..=n)
        .flat_map(|i| tb.handles[&NodeId(i)].with(|node| node.current_tuples()))
        .find(|t| t.relation == "bestCost");
    match target {
        Some(t) => {
            let host = t.location;
            tb.querier.why_exists(t).at(host).run()
        }
        None => tb.querier.why_exists(link(NodeId(1), NodeId(2), 1)).at(NodeId(1)).run(),
    }
}

/// An 8-node Chord deployment queried with a forward slice (`effects_of` a
/// hub's `me` tuple) — the fan-out shape the parallel pool accelerates.
fn chord_query(seed: u64, threads: usize) -> QueryResult {
    let scenario = ChordScenario {
        nodes: 8,
        lookups_per_minute: 12,
        ..ChordScenario::small(30)
    };
    let (mut tb, ring) = scenario.build(true, seed, None);
    tb.querier.set_query_threads(threads);
    tb.run_until(SimTime::from_secs(45));
    let (hub_id, hub) = ring.members[0];
    tb.querier.effects_of(chord::me(hub, hub_id)).at(hub).run()
}

/// Everything externally observable about two query results must match.
fn assert_equivalent(context: &str, reference: &QueryResult, other: &QueryResult) {
    assert_eq!(reference.root, other.root, "{context}: root");
    assert_eq!(reference.render(), other.render(), "{context}: render");
    assert_eq!(
        reference.implicated_nodes(),
        other.implicated_nodes(),
        "{context}: implicated"
    );
    assert_eq!(reference.suspect_nodes(), other.suspect_nodes(), "{context}: suspects");
    assert_eq!(reference.hosts(), other.hosts(), "{context}: hosts");
    assert_eq!(reference.len(), other.len(), "{context}: explanation size");
    assert_eq!(
        reference.stats.without_timing(),
        other.stats.without_timing(),
        "{context}: stats modulo timing"
    );
    let colors = |r: &QueryResult| -> Vec<(NodeId, Color)> { r.audits.iter().map(|(n, a)| (*n, a.color)).collect() };
    assert_eq!(colors(reference), colors(other), "{context}: audit colors");
}

/// Determinism across worker counts (the tentpole invariant): for random
/// seeds, apps and thread counts 1/2/8, the rendered explanation, the
/// implicated/suspect sets and the non-timing stats are identical — under
/// clean runs, Byzantine nodes and truncated logs alike.
#[test]
fn prop_parallel_and_serial_queries_are_identical() {
    for case in 0..3u64 {
        let victim = 1 + case % 4;
        let scenarios = [
            ("clean", Fault::None, false),
            ("tampered", Fault::Tamper(victim), false),
            ("refusing+truncated", Fault::Refuse(victim), true),
            ("truncated", Fault::None, true),
        ];
        for (name, fault, truncate) in scenarios {
            let reference = mincost_query(case, fault, truncate, 1);
            for threads in [2usize, 8] {
                let parallel = mincost_query(case, fault, truncate, threads);
                assert_equivalent(&format!("case {case} {name} x{threads}"), &reference, &parallel);
            }
            // Faulty runs must still blame only the victim.
            if let Fault::Tamper(v) | Fault::Refuse(v) = fault {
                for implicated in reference.implicated_nodes() {
                    assert_eq!(implicated, NodeId(v), "case {case} {name}: accuracy");
                }
            }
        }
    }
}

/// Positive/negative duality: after insert→delete, `why_absent(τ)` (now and
/// at a historical instant after the deletion) agrees with
/// `why_disappeared(τ)` — the absence explanation contains the
/// disappearance anchor and, through it, the base-tuple delete; before the
/// insertion the same query explains a never-inserted base tuple instead.
#[test]
fn prop_absence_and_disappearance_are_dual() {
    for case in 0..4u64 {
        let mut rng = DetRng::new(case ^ 0xd0a1);
        let links = arbitrary_links(&mut rng, 4);
        let mut builder = Deployment::builder().seed(7).secure(true);
        for i in 1..=4u64 {
            builder = builder.node(NodeId(i), |id| Box::new(Engine::new(id, mincost_rules())));
        }
        // A guaranteed direct link (so bestCost(@1, 2, 5) exists), plus the
        // random background topology.
        builder = builder.insert_at(SimTime::from_millis(10), NodeId(1), link(NodeId(1), NodeId(2), 5));
        for (idx, (a, b, cost)) in links.iter().enumerate() {
            let at = SimTime::from_millis(20 + idx as u64);
            builder = builder
                .insert_at(at, NodeId(*a), link(NodeId(*a), NodeId(*b), *cost))
                .insert_at(at, NodeId(*b), link(NodeId(*b), NodeId(*a), *cost));
        }
        // Delete every link again so the derived state drains.
        builder = builder.delete_at(SimTime::from_secs(10), NodeId(1), link(NodeId(1), NodeId(2), 5));
        for (idx, (a, b, cost)) in links.iter().enumerate() {
            let at = SimTime::from_millis(11_000 + idx as u64);
            builder = builder
                .delete_at(at, NodeId(*a), link(NodeId(*a), NodeId(*b), *cost))
                .delete_at(at, NodeId(*b), link(NodeId(*b), NodeId(*a), *cost));
        }
        let mut tb = builder.build();
        tb.run_until(SimTime::from_secs(25));

        let vanished = Tuple::new("bestCost", NodeId(1), vec![Value::Node(NodeId(2)), Value::Int(5)]);
        assert!(
            !tb.handles[&NodeId(1)].with(|n| n.has_tuple(&vanished)),
            "case {case}: the tuple must be gone"
        );
        let disappeared = tb.querier.why_disappeared(vanished.clone()).at(NodeId(1)).run();
        let anchor = disappeared.root.expect("disappearance anchor");

        for (label, result) in [
            ("now", tb.querier.why_absent(vanished.clone()).at(NodeId(1)).run()),
            (
                "historical",
                tb.querier
                    .why_absent(vanished.clone())
                    .at(NodeId(1))
                    .when(20_000_000)
                    .run(),
            ),
            (
                "vanished",
                tb.querier.why_vanished(vanished.clone()).at(NodeId(1)).run(),
            ),
        ] {
            assert!(result.root.is_some(), "case {case} {label}: absence root");
            assert!(
                result.traversal.as_ref().unwrap().depths.contains_key(&anchor),
                "case {case} {label}: why_absent must contain the why_disappeared anchor"
            );
            assert!(
                result.vertices().any(|v| matches!(&v.kind, VertexKind::Delete { .. })),
                "case {case} {label}: the delete must explain the absence"
            );
            assert_eq!(
                result.implicated_nodes(),
                disappeared.implicated_nodes(),
                "case {case} {label}: dual queries agree on culprits"
            );
        }

        // Before the insertion the tuple was absent as a never-derivable
        // head over an empty store — no delete involved.
        let before = tb.querier.why_absent(vanished).at(NodeId(1)).when(1).run();
        assert!(before.root.is_some(), "case {case}: pre-insertion absence");
        assert!(
            !before.vertices().any(|v| matches!(&v.kind, VertexKind::Delete { .. })),
            "case {case}: nothing was deleted before the insertion"
        );
    }
}

/// Build a MinCost deployment for `case`, run a `why_absent` macroquery of a
/// never-derivable tuple with the given worker count, and return the result.
/// The wildcarded pattern forces the full negative pipeline: a local missing
/// body atom plus a cross-node never-received fan-out over every peer.
fn mincost_negative_query(case: u64, fault: Fault, threads: usize) -> QueryResult {
    let mut rng = DetRng::new(case.wrapping_mul(0x517c));
    let n = 4;
    let links = arbitrary_links(&mut rng, n);
    let mut builder = Deployment::builder().seed(7).secure(true);
    for i in 1..=n {
        builder = builder.node(NodeId(i), |id| Box::new(Engine::new(id, mincost_rules())));
    }
    match fault {
        Fault::None => {}
        Fault::Tamper(node) => {
            builder = builder.byzantine(
                NodeId(node),
                ByzantineConfig {
                    tamper_log_drop_entry: Some(0),
                    ..Default::default()
                },
            );
        }
        Fault::Refuse(node) => {
            builder = builder.byzantine(
                NodeId(node),
                ByzantineConfig {
                    refuse_retrieve: true,
                    ..Default::default()
                },
            );
        }
    }
    // A ring of guaranteed links so every node logs activity (a refusing
    // node with an empty log is legitimately excused), plus the random
    // background topology.
    for i in 1..=n {
        builder = builder.insert_at(
            SimTime::from_millis(i),
            NodeId(i),
            link(NodeId(i), NodeId(i % n + 1), 10),
        );
    }
    for (idx, (a, b, cost)) in links.iter().enumerate() {
        let at = SimTime::from_millis(10 + idx as u64);
        builder = builder
            .insert_at(at, NodeId(*a), link(NodeId(*a), NodeId(*b), *cost))
            .insert_at(at, NodeId(*b), link(NodeId(*b), NodeId(*a), *cost));
    }
    let mut tb = builder.build();
    tb.querier.set_query_threads(threads);
    tb.run_until(SimTime::from_secs(25));
    let pattern = Tuple::new("bestCost", NodeId(1), vec![Value::Node(NodeId(9)), Value::Wild]);
    tb.querier.why_absent(pattern).at(NodeId(1)).run()
}

/// Serial/parallel identity for the negative query class: for random seeds,
/// thread counts 1/2/8 and clean/tampered/refusing runs, `why_absent`
/// renders byte-identically and reports identical verdicts and non-timing
/// stats.
#[test]
fn prop_why_absent_is_thread_count_invariant() {
    for case in 0..3u64 {
        let victim = 1 + case % 4;
        let scenarios = [
            ("clean", Fault::None),
            ("tampered", Fault::Tamper(victim)),
            ("refusing", Fault::Refuse(victim)),
        ];
        for (name, fault) in scenarios {
            let reference = mincost_negative_query(case, fault, 1);
            assert!(
                reference.root.is_some(),
                "case {case} {name}: the absence must always anchor"
            );
            for threads in [2usize, 8] {
                let parallel = mincost_negative_query(case, fault, threads);
                assert_equivalent(&format!("case {case} neg {name} x{threads}"), &reference, &parallel);
            }
            // Accuracy on the negative path: faults surface, honest nodes
            // stay clean.
            match fault {
                Fault::None => assert!(
                    reference.implicated_nodes().is_empty(),
                    "case {case}: clean runs implicate nobody"
                ),
                Fault::Tamper(v) => {
                    for implicated in reference.implicated_nodes() {
                        assert_eq!(implicated, NodeId(v), "case {case} {name}: accuracy");
                    }
                }
                Fault::Refuse(v) => {
                    assert!(
                        reference.implicated_nodes().is_empty(),
                        "case {case}: refusal alone implicates nobody"
                    );
                    assert!(
                        reference.suspect_nodes().contains(&NodeId(v)),
                        "case {case}: the refusing node must be suspect"
                    );
                }
            }
        }
    }
}

/// The same invariant on the Chord forward slice, whose first expansion wave
/// fans out across many hosts (the shape the pool actually parallelizes).
#[test]
fn prop_chord_forward_slice_is_thread_count_invariant() {
    for seed in [11u64, 29] {
        let reference = chord_query(seed, 1);
        assert!(
            reference.root.is_some(),
            "seed {seed}: the hub's me tuple must have a recorded appearance"
        );
        for threads in [2usize, 8] {
            let parallel = chord_query(seed, threads);
            assert_equivalent(&format!("chord seed {seed} x{threads}"), &reference, &parallel);
        }
    }
}

// ---------------------------------------------------------------------------
// The §4.3 theorems over every Figure-8 scenario row.
//
// Figure 8's harness measures turnaround and bytes; these tests re-run the
// same eight query rows (at smoke sizes) and assert the two formal
// guarantees on each result: accuracy (`check_accuracy` over the returned
// provenance graph — no red vertex on a correct node) and completeness
// (`check_completeness` — every detectable fault leaves a red/yellow suspect
// on a faulty node).  Positive (`why_exists`/`why_disappeared`) and negative
// (`why_absent`) rows alike.
// ---------------------------------------------------------------------------

/// Assert both theorems (and the implication form of accuracy) on a result.
fn assert_theorems(context: &str, result: &QueryResult, byzantine: &BTreeSet<NodeId>) {
    assert!(result.root.is_some(), "{context}: the query must anchor");
    if let Err(e) = check_accuracy(&result.graph, byzantine) {
        panic!("{context}: accuracy violated: {e}");
    }
    if let Err(e) = check_completeness(result, byzantine) {
        panic!("{context}: completeness violated: {e}");
    }
    for implicated in result.implicated_nodes() {
        assert!(
            byzantine.contains(&implicated),
            "{context}: correct node {implicated} was implicated"
        );
    }
}

/// Fig. 8 row 1 — `Quagga-Disappear` (positive, clean run): the historical
/// `why_disappeared` of a withdrawn route satisfies both theorems with an
/// empty fault set.
#[test]
fn fig8_quagga_disappear_upholds_theorems() {
    let (mut tb, i, _j, prefix) = bgp::disappear_scenario(true, 3);
    tb.enable_checkpoints(30_000_000);
    tb.run_until(SimTime::from_secs(20));
    bgp::disappear_trigger(&mut tb, SimTime::from_secs(25));
    tb.run_until(SimTime::from_secs(60));
    let result = tb
        .querier
        .why_disappeared(bgp::adv_route(
            i,
            &prefix,
            &[NodeId(2), NodeId(3), NodeId(5)],
            NodeId(2),
        ))
        .at(i)
        .run();
    assert_theorems("Quagga-Disappear", &result, &BTreeSet::new());
}

/// Fig. 8 row 2 — `Quagga-BadGadget` (positive, clean run): mid-flutter
/// `why_exists` of an oscillating route never produces red evidence.
#[test]
fn fig8_quagga_badgadget_upholds_theorems() {
    let (mut tb, _dest, prefix) = bgp::badgadget_scenario(true, 5);
    tb.run_until(SimTime::from_millis(600));
    let route = tb.handles[&NodeId(1)]
        .with(|n| n.current_tuples())
        .into_iter()
        .find(|t| t.relation == "route" && t.str_arg(0) == Some(prefix.as_str()))
        .expect("AS 1 has a route to the gadget prefix");
    let result = tb.querier.why_exists(route).at(NodeId(1)).run();
    assert_theorems("Quagga-BadGadget", &result, &BTreeSet::new());
}

/// Fig. 8 rows 3–5 — the `Chord-Lookup` family (positive, clean runs): the
/// genesis-replay row and the checkpoint-anchored row both satisfy the
/// theorems with an empty fault set.
#[test]
fn fig8_chord_lookup_upholds_theorems() {
    for (label, epoch_s) in [("Chord-Lookup (S)", None), ("Chord-Lookup (S+ckpt)", Some(10u64))] {
        let scenario = ChordScenario {
            nodes: 12,
            lookups_per_minute: 0,
            ..ChordScenario::small(60)
        };
        let (mut tb, ring) = scenario.build(true, 9, None);
        if let Some(s) = epoch_s {
            tb.set_epoch_length(s * 1_000_000);
        }
        let origin = ring.members[0].1;
        let key = (ring.members[ring.members.len() / 2].0 + 1) % chord::ID_SPACE;
        let (owner_id, owner) = ring.owner_of(key);
        let (inject_s, audit_s) = if epoch_s.is_some() { (86, 89) } else { (1, 90) };
        tb.insert_at(
            SimTime::from_secs(inject_s),
            origin,
            chord::lookup(origin, key, origin, 1),
        );
        tb.run_until(SimTime::from_secs(audit_s));
        let result = tb
            .querier
            .why_exists(chord::lookup_result(origin, 1, key, owner, owner_id))
            .at(origin)
            .run();
        assert_theorems(label, &result, &BTreeSet::new());
    }
}

/// Fig. 8 row 6 — `Hadoop-Squirrel` (positive, corrupt mapper): replaying the
/// inflated count against the honest map function reds only the corrupt
/// mapper, which must surface among the suspects.
#[test]
fn fig8_hadoop_squirrel_upholds_theorems() {
    let scenario = mapreduce::MapReduceScenario {
        mappers: 4,
        reducers: 2,
        splits: 4,
        words_per_split: 50,
    };
    let corrupt = NodeId(3);
    let mut tb = scenario.build(true, 7, Some(corrupt), 93);
    tb.run_until(SimTime::from_secs(60));
    let reducer = mapreduce::reducer_for("squirrel", &scenario.reducer_ids());
    let total = tb.handles[&reducer]
        .with(|n| n.current_tuples())
        .into_iter()
        .find(|t| t.relation == "reduceOut" && t.str_arg(0) == Some("squirrel"))
        .and_then(|t| t.int_arg(1))
        .expect("squirrel count");
    let result = tb
        .querier
        .why_exists(mapreduce::reduce_out(reducer, "squirrel", total))
        .at(reducer)
        .run();
    assert_theorems("Hadoop-Squirrel", &result, &[corrupt].into());
}

/// Fig. 8 row 7 — `BGP-NoRoute` (negative, withholding transit): the
/// `why_absent` of the missing route implicates the transit AS and nobody
/// else.
#[test]
fn fig8_bgp_blackhole_negative_upholds_theorems() {
    let (mut tb, victim, transit, prefix) = bgp::blackhole_scenario(true, 21, true);
    tb.run_until(SimTime::from_secs(30));
    let result = tb
        .querier
        .why_absent(bgp::route_pattern(victim, &prefix))
        .at(victim)
        .run();
    assert_theorems("BGP-NoRoute (neg)", &result, &[transit].into());
}

/// Fig. 8 row 8 — `Chord-Eclipse` (negative, lying resolver): the
/// `why_absent` of the correct lookup result surfaces the eclipse attacker
/// without implicating any honest ring member.
#[test]
fn fig8_chord_eclipse_negative_upholds_theorems() {
    let (mut tb, origin, attacker, correct) = chord::eclipse_scenario(8, 3);
    tb.run_until(SimTime::from_secs(60));
    let result = tb.querier.why_absent(correct).at(origin).run();
    assert_theorems("Chord-Eclipse (neg)", &result, &[attacker].into());
}

//! Property-based integration tests of the SNP theorems on randomly generated
//! workloads (small MinCost-style deployments with randomized link sets and
//! fault injection).

use proptest::prelude::*;
use snp::apps::mincost::{link, mincost_rules};
use snp::apps::Testbed;
use snp::core::query::MacroQuery;
use snp::core::ByzantineConfig;
use snp::crypto::keys::NodeId;
use snp::datalog::Engine;
use snp::graph::Color;
use snp::sim::{NetworkConfig, SimTime};
use std::collections::BTreeSet;

/// Build a MinCost deployment over `n` routers with the given undirected
/// links, optionally making one node refuse retrieval or suppress traffic.
fn run_deployment(n: u64, links: &[(u64, u64, i64)], byzantine: Option<(u64, ByzantineConfig)>) -> Testbed {
    let mut tb = Testbed::new(NetworkConfig::default(), 7, n + 1, true);
    for i in 1..=n {
        tb.add_node(
            NodeId(i),
            Box::new(Engine::new(NodeId(i), mincost_rules())),
            Box::new(Engine::new(NodeId(i), mincost_rules())),
        );
    }
    if let Some((node, cfg)) = byzantine {
        tb.set_byzantine(NodeId(node), cfg);
    }
    for (idx, (a, b, cost)) in links.iter().enumerate() {
        let at = SimTime::from_millis(10 + idx as u64);
        tb.insert_at(at, NodeId(*a), link(NodeId(*a), NodeId(*b), *cost));
        tb.insert_at(at, NodeId(*b), link(NodeId(*b), NodeId(*a), *cost));
    }
    tb.run_until(SimTime::from_secs(25));
    tb
}

fn arbitrary_links(n: u64) -> impl Strategy<Value = Vec<(u64, u64, i64)>> {
    proptest::collection::vec((1..=n, 1..=n, 1i64..20), 2..10).prop_map(move |raw| {
        raw.into_iter().filter(|(a, b, _)| a != b).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Accuracy (Theorem 5): with no Byzantine nodes, no audit ever comes back
    /// red and no red vertex appears anywhere.
    #[test]
    fn prop_clean_runs_have_no_red_evidence(links in arbitrary_links(5)) {
        let mut tb = run_deployment(5, &links, None);
        for node in 1..=5u64 {
            let audit = tb.querier.audit(NodeId(node));
            prop_assert_eq!(audit.color, Color::Black, "audit of correct node {} was {:?}", node, audit.notes);
            let graph = tb.querier.node_graph(NodeId(node));
            prop_assert!(graph.faulty_nodes().is_empty());
        }
    }

    /// Completeness (Theorem 6, practical form): querying the state that a
    /// suppressing node failed to propagate always leads to red/yellow
    /// evidence on that node, and never implicates a correct node.
    #[test]
    fn prop_explanations_never_implicate_correct_nodes(links in arbitrary_links(4), victim in 1u64..=4) {
        let mut cfg = ByzantineConfig::honest();
        cfg.refuse_retrieve = true;
        let mut tb = run_deployment(4, &links, Some((victim, cfg)));
        // Query every bestCost tuple that exists anywhere.
        let mut queried = 0;
        let ids: Vec<u64> = (1..=4).collect();
        for i in ids {
            let tuples = tb.handles[&NodeId(i)].with(|n| n.current_tuples());
            for t in tuples.into_iter().filter(|t| t.relation == "bestCost").take(2) {
                let result = tb.querier.macroquery(MacroQuery::WhyExists { tuple: t }, NodeId(i), None);
                queried += 1;
                let byz: BTreeSet<NodeId> = [NodeId(victim)].into();
                for implicated in result.implicated_nodes() {
                    prop_assert!(byz.contains(&implicated), "correct node {implicated} was implicated");
                }
            }
        }
        prop_assert!(queried > 0 || links.is_empty());
    }
}

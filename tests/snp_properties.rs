//! Property-style integration tests of the SNP theorems on randomly generated
//! workloads (small MinCost-style deployments with randomized link sets and
//! fault injection).
//!
//! The workloads are generated with the repo's own deterministic RNG
//! (proptest is unavailable in the offline build environment), so every case
//! is reproducible from its seed.

use snp::apps::mincost::{link, mincost_rules};
use snp::core::deploy::Deployment;
use snp::core::ByzantineConfig;
use snp::crypto::keys::NodeId;
use snp::datalog::Engine;
use snp::graph::Color;
use snp::sim::rng::DetRng;
use snp::sim::SimTime;
use std::collections::BTreeSet;

/// Build a MinCost deployment over `n` routers with the given undirected
/// links, optionally making one node refuse retrieval or suppress traffic.
fn run_deployment(n: u64, links: &[(u64, u64, i64)], byzantine: Option<(u64, ByzantineConfig)>) -> Deployment {
    let mut builder = Deployment::builder().seed(7).secure(true);
    for i in 1..=n {
        builder = builder.node(NodeId(i), |id| Box::new(Engine::new(id, mincost_rules())));
    }
    if let Some((node, cfg)) = byzantine {
        builder = builder.byzantine(NodeId(node), cfg);
    }
    for (idx, (a, b, cost)) in links.iter().enumerate() {
        let at = SimTime::from_millis(10 + idx as u64);
        builder = builder
            .insert_at(at, NodeId(*a), link(NodeId(*a), NodeId(*b), *cost))
            .insert_at(at, NodeId(*b), link(NodeId(*b), NodeId(*a), *cost));
    }
    let mut deployment = builder.build();
    deployment.run_until(SimTime::from_secs(25));
    deployment
}

/// A random link set over routers `1..=n`: 2–9 links with costs in 1..20,
/// self-loops filtered out.
fn arbitrary_links(rng: &mut DetRng, n: u64) -> Vec<(u64, u64, i64)> {
    let count = 2 + rng.next_below(8) as usize;
    (0..count)
        .map(|_| {
            (
                1 + rng.next_below(n),
                1 + rng.next_below(n),
                1 + rng.next_below(19) as i64,
            )
        })
        .filter(|(a, b, _)| a != b)
        .collect()
}

/// Accuracy (Theorem 5): with no Byzantine nodes, no audit ever comes back
/// red and no red vertex appears anywhere.
#[test]
fn prop_clean_runs_have_no_red_evidence() {
    for case in 0..8u64 {
        let mut rng = DetRng::new(case);
        let links = arbitrary_links(&mut rng, 5);
        let mut tb = run_deployment(5, &links, None);
        for node in 1..=5u64 {
            let audit = tb.querier.audit(NodeId(node));
            assert_eq!(
                audit.color,
                Color::Black,
                "case {case}: audit of correct node {node} was {:?}",
                audit.notes
            );
            let graph = tb.querier.node_graph(NodeId(node));
            assert!(graph.faulty_nodes().is_empty(), "case {case}");
        }
    }
}

/// Completeness (Theorem 6, practical form): querying the state that a
/// suppressing node failed to propagate always leads to red/yellow evidence
/// on that node, and never implicates a correct node.
#[test]
fn prop_explanations_never_implicate_correct_nodes() {
    for case in 0..8u64 {
        let mut rng = DetRng::new(case ^ 0xface);
        let links = arbitrary_links(&mut rng, 4);
        let victim = 1 + rng.next_below(4);
        let mut cfg = ByzantineConfig::honest();
        cfg.refuse_retrieve = true;
        let mut tb = run_deployment(4, &links, Some((victim, cfg)));
        // Query every bestCost tuple that exists anywhere.
        let mut queried = 0;
        for i in 1..=4u64 {
            let tuples = tb.handles[&NodeId(i)].with(|n| n.current_tuples());
            for t in tuples.into_iter().filter(|t| t.relation == "bestCost").take(2) {
                let result = tb.querier.why_exists(t).at(NodeId(i)).run();
                queried += 1;
                let byz: BTreeSet<NodeId> = [NodeId(victim)].into();
                for implicated in result.implicated_nodes() {
                    assert!(
                        byz.contains(&implicated),
                        "case {case}: correct node {implicated} was implicated"
                    );
                }
            }
        }
        assert!(queried > 0 || links.is_empty(), "case {case}");
    }
}

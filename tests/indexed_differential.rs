//! Deployment-level differential tests of the indexed engine against the
//! retained naive-scan reference ([`snp::datalog::NaiveEngine`]).
//!
//! The unit-level differential in `snp-datalog` proves the two engines
//! agree input-by-input; these tests pit them against each other through
//! the *whole* pipeline — secure logging, commitment, checkpointing, audit
//! replay (the querier's expected machines are swapped too), positive and
//! negative macroqueries, serial and parallel audit scheduling.  Everything
//! externally observable must be byte-identical: node fingerprints (which
//! hash the machine snapshots), rendered explanations, audit colors,
//! verdict sets, and the non-timing cost accounting.  The only permitted
//! difference is `QueryStats::rule_evals`: the scan reference deliberately
//! reports no evaluation counters.

// Test code may unwrap: a panic is the assertion.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use snp::apps::mincost::{link, mincost_rules};
use snp::core::deploy::Deployment;
use snp::core::query::QueryResult;
use snp::core::ByzantineConfig;
use snp::crypto::keys::NodeId;
use snp::datalog::{Engine, NaiveEngine, Tuple, Value};
use snp::sim::rng::DetRng;
use snp::sim::SimTime;

const N: u64 = 4;

/// The fault injections the differential covers: clean runs, tampered logs
/// (red evidence) and refused retrievals (yellow evidence).
#[derive(Clone, Copy, Debug)]
enum Fault {
    None,
    Tamper(u64),
    Refuse(u64),
}

/// A random link set over routers `1..=n` derived from `case`.
fn arbitrary_links(case: u64, salt: u64) -> Vec<(u64, u64, i64)> {
    let mut rng = DetRng::new(case.wrapping_mul(0xa5a5).wrapping_add(salt));
    let count = 3 + rng.next_below(6) as usize;
    (0..count)
        .map(|_| {
            (
                1 + rng.next_below(N),
                1 + rng.next_below(N),
                1 + rng.next_below(19) as i64,
            )
        })
        .filter(|(a, b, _)| a != b)
        .collect()
}

/// Build and run a MinCost deployment whose routers — and whose querier's
/// expected replay machines — are either all indexed or all naive-scan.
fn deployment(case: u64, fault: Fault, naive: bool, threads: usize) -> Deployment {
    let mut builder = Deployment::builder().seed(7).secure(true);
    for i in 1..=N {
        builder = if naive {
            builder.node(NodeId(i), |id| Box::new(NaiveEngine::new(id, mincost_rules())))
        } else {
            builder.node(NodeId(i), |id| Box::new(Engine::new(id, mincost_rules())))
        };
    }
    match fault {
        Fault::None => {}
        Fault::Tamper(node) => {
            builder = builder.byzantine(
                NodeId(node),
                ByzantineConfig {
                    tamper_log_drop_entry: Some(0),
                    ..Default::default()
                },
            );
        }
        Fault::Refuse(node) => {
            builder = builder.byzantine(
                NodeId(node),
                ByzantineConfig {
                    refuse_retrieve: true,
                    ..Default::default()
                },
            );
        }
    }
    // A guaranteed ring so every node logs activity, plus random topology.
    for i in 1..=N {
        builder = builder.insert_at(
            SimTime::from_millis(i),
            NodeId(i),
            link(NodeId(i), NodeId(i % N + 1), 10),
        );
    }
    for (idx, (a, b, cost)) in arbitrary_links(case, 0).into_iter().enumerate() {
        let at = SimTime::from_millis(10 + idx as u64);
        builder = builder
            .insert_at(at, NodeId(a), link(NodeId(a), NodeId(b), cost))
            .insert_at(at, NodeId(b), link(NodeId(b), NodeId(a), cost));
    }
    let mut tb = builder.build();
    tb.querier.set_query_threads(threads);
    tb.run_until(SimTime::from_secs(25));
    tb
}

/// The deterministic positive query target: the first `bestCost` tuple, in
/// node order.  Both engines must agree it exists.
fn positive_target(tb: &Deployment) -> Tuple {
    (1..=N)
        .flat_map(|i| tb.handles[&NodeId(i)].with(|node| node.current_tuples()))
        .find(|t| t.relation == "bestCost")
        .expect("the guaranteed ring always derives a bestCost")
}

/// Everything externally observable must match, modulo the evaluation
/// counters the scan reference deliberately lacks.
fn assert_matches(context: &str, indexed: &QueryResult, scan: &QueryResult) {
    assert_eq!(indexed.root, scan.root, "{context}: root");
    assert_eq!(indexed.render(), scan.render(), "{context}: render");
    assert_eq!(
        indexed.implicated_nodes(),
        scan.implicated_nodes(),
        "{context}: implicated"
    );
    assert_eq!(indexed.suspect_nodes(), scan.suspect_nodes(), "{context}: suspects");
    let colors = |r: &QueryResult| -> Vec<(NodeId, String)> {
        r.audits.iter().map(|(n, a)| (*n, format!("{:?}", a.color))).collect()
    };
    assert_eq!(colors(indexed), colors(scan), "{context}: audit colors");
    let mut a = indexed.stats.without_timing();
    let mut b = scan.stats.without_timing();
    assert!(b.rule_evals.is_empty(), "{context}: the scan reference has no counters");
    a.rule_evals.clear();
    b.rule_evals.clear();
    assert_eq!(a, b, "{context}: stats modulo timing and eval counters");
}

/// Node fingerprints — what snp-check's state hashing and the audit
/// protocol's commitments are built from — must be byte-identical between
/// the two engines after identical workloads, faults included.
#[test]
fn node_fingerprints_are_engine_independent() {
    for case in 0..3u64 {
        for fault in [Fault::None, Fault::Tamper(1 + case % N)] {
            let indexed = deployment(case, fault, false, 1);
            let scan = deployment(case, fault, true, 1);
            for i in 1..=N {
                assert_eq!(
                    indexed.handles[&NodeId(i)].with(|n| n.fingerprint()).to_hex(),
                    scan.handles[&NodeId(i)].with(|n| n.fingerprint()).to_hex(),
                    "case {case} {fault:?}: node {i} fingerprint diverged"
                );
            }
        }
    }
}

/// Positive macroqueries (`why_exists`) agree between the engines at every
/// worker count, under clean and faulty runs alike — and the indexed
/// engine's evaluation counters are themselves thread-count invariant.
#[test]
fn positive_queries_match_scan_reference_at_all_thread_counts() {
    for case in 0..2u64 {
        for fault in [
            Fault::None,
            Fault::Tamper(1 + case % N),
            Fault::Refuse(1 + (case + 1) % N),
        ] {
            let mut reference_evals = None;
            for threads in [1usize, 2, 8] {
                let mut indexed = deployment(case, fault, false, threads);
                let mut scan = deployment(case, fault, true, threads);
                let target = positive_target(&indexed);
                assert_eq!(target, positive_target(&scan), "case {case}: engines disagree on state");
                let host = target.location;
                let a = indexed.querier.why_exists(target.clone()).at(host).run();
                let b = scan.querier.why_exists(target).at(host).run();
                assert_matches(&format!("case {case} {fault:?} pos x{threads}"), &a, &b);
                // Replay only runs on audits that are still clean after log
                // verification, so only fault-free runs are guaranteed to
                // surface evaluation counters.
                if matches!(fault, Fault::None) {
                    assert!(
                        !a.stats.rule_evals.is_empty(),
                        "case {case}: replay must surface evaluation counters"
                    );
                }
                let evals = a.stats.rule_evals.clone();
                match &reference_evals {
                    None => reference_evals = Some(evals),
                    Some(reference) => assert_eq!(
                        reference, &evals,
                        "case {case} {fault:?} x{threads}: rule_evals must not depend on scheduling"
                    ),
                }
            }
        }
    }
}

/// Negative macroqueries (`why_absent` of a never-derivable wildcard
/// pattern — the full absence pipeline, including the indexed candidate
/// enumeration in the absence tracer) agree between the engines at every
/// worker count.
#[test]
fn negative_queries_match_scan_reference_at_all_thread_counts() {
    let pattern = || Tuple::new("bestCost", NodeId(1), vec![Value::Node(NodeId(9)), Value::Wild]);
    for case in 0..2u64 {
        for fault in [Fault::None, Fault::Refuse(1 + case % N)] {
            for threads in [1usize, 2, 8] {
                let mut indexed = deployment(case, fault, false, threads);
                let mut scan = deployment(case, fault, true, threads);
                let a = indexed.querier.why_absent(pattern()).at(NodeId(1)).run();
                let b = scan.querier.why_absent(pattern()).at(NodeId(1)).run();
                assert!(a.root.is_some(), "case {case}: the absence must anchor");
                assert_matches(&format!("case {case} {fault:?} neg x{threads}"), &a, &b);
            }
        }
    }
}

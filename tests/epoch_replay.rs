//! Integration tests for epoch-segmented logs: checkpoint-anchored suffix
//! replay, seeded determinism of digests/checkpoint roots, tamper evidence
//! across truncation, and the truncated-window forensics (E7) guarantee.

// Test code may unwrap: a panic is the assertion.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use snp::apps::chord::{self, ChordScenario};
use snp::apps::mincost::{self, link, MinCost};
use snp::core::deploy::Deployment;
use snp::core::properties;
use snp::core::ByzantineConfig;
use snp::crypto::keys::NodeId;
use snp::graph::Color;
use snp::sim::{SimDuration, SimTime};
use std::collections::BTreeSet;

/// A small Chord ring with steady maintenance traffic.
fn chord_scenario(duration_s: u64) -> ChordScenario {
    ChordScenario {
        nodes: 12,
        lookups_per_minute: 0,
        ..ChordScenario::small(duration_s)
    }
}

/// Build the chord deployment, optionally with epoch sealing / truncation.
fn chord_deployment(
    seed: u64,
    duration_s: u64,
    epoch_s: Option<u64>,
    retain: Option<usize>,
    attacker: Option<NodeId>,
) -> (Deployment, chord::ChordRing) {
    let scenario = chord_scenario(duration_s);
    let app = scenario.app(attacker);
    let ring = app.ring.clone();
    let mut builder = Deployment::builder().seed(seed).app(app);
    if let Some(s) = epoch_s {
        builder = builder.epoch_length(SimDuration::from_secs(s));
    }
    if let Some(k) = retain {
        builder = builder.retain_epochs(k);
    }
    (builder.build(), ring)
}

/// Acceptance criterion: a `why_exists` query on a long-running Chord
/// deployment replays only entries from the checkpoint at-or-before the
/// query, visibly fewer than a from-genesis replay of the same history.
#[test]
fn chord_query_replays_only_the_suffix_after_the_checkpoint() {
    let run = |epoch_s: Option<u64>| {
        let (mut tb, ring) = chord_deployment(9, 60, epoch_s, None, None);
        // Inject a lookup late, after several epochs have been sealed (the
        // last seal before the query is at t = 60).
        let origin = ring.members[0].1;
        let key = (ring.members[ring.members.len() / 2].0 + 1) % chord::ID_SPACE;
        let (owner_id, owner) = ring.owner_of(key);
        tb.insert_at(SimTime::from_secs(66), origin, chord::lookup(origin, key, origin, 1));
        tb.run_until(SimTime::from_secs(68));
        let result = tb
            .querier
            .why_exists(chord::lookup_result(origin, 1, key, owner, owner_id))
            .at(origin)
            .run();
        assert!(result.root.is_some(), "lookup result must be explained");
        assert!(result.implicated_nodes().is_empty());
        assert!(result.is_legitimate(), "{}", result.render());
        result
    };

    let genesis = run(None);
    let anchored = run(Some(10));

    assert_eq!(genesis.stats.skipped_entries, 0);
    assert!(genesis.stats.replayed_entries > 0);
    assert!(
        anchored.stats.skipped_entries > 0,
        "anchored audits must skip the sealed prefix"
    );
    assert!(
        anchored.stats.replayed_entries < genesis.stats.replayed_entries / 2,
        "anchored replay ({}) must be visibly cheaper than from-genesis replay ({})",
        anchored.stats.replayed_entries,
        genesis.stats.replayed_entries
    );
    // Every audited node anchored at a checkpoint and reported what it
    // actually replayed.
    for audit in anchored.audits.values() {
        assert!(audit.anchor_epoch.is_some(), "node {} not anchored", audit.node);
    }
    // The per-segment accounting matches the aggregate.
    let per_segment: u64 = anchored.stats.segment_bytes.iter().map(|s| s.bytes).sum();
    assert_eq!(per_segment, anchored.stats.log_bytes);
}

/// Satellite: the same seed produces byte-identical log digests and
/// checkpoint roots across two runs, including across a truncation.
#[test]
fn seeded_runs_produce_identical_digests_across_truncation() {
    let snapshot = || {
        let (mut tb, _) = chord_deployment(7, 60, Some(10), Some(2), None);
        tb.run_until(SimTime::from_secs(61));
        let mut out = Vec::new();
        for (id, handle) in &tb.handles {
            let head = handle.with(|n| n.log_head());
            let roots = handle.with(|n| n.checkpoint_roots());
            let dropped = handle.with(|n| n.log_dropped_entries());
            assert!(
                handle.with(|n| n.log_dropped_entries() == 0 || n.log_len() < n.log_total_appended() as usize),
                "truncation accounting must be consistent"
            );
            out.push((*id, head, roots, dropped));
        }
        // At least one node must actually have truncated history, otherwise
        // this test does not cover the "across a truncation" clause.
        assert!(out.iter().any(|(_, _, _, dropped)| *dropped > 0));
        out
    };
    let a = snapshot();
    let b = snapshot();
    assert_eq!(a, b, "same seed must yield byte-identical digests and roots");
}

/// A MinCost deployment with link churn spread across several epochs, so
/// that anchored audits have non-empty sealed suffix segments to verify.
fn churning_mincost(seed: u64) -> Deployment {
    let mut tb = Deployment::builder()
        .seed(seed)
        .app(MinCost::example())
        .epoch_length(SimDuration::from_secs(5))
        .insert_at(SimTime::from_secs(8), mincost::A, link(mincost::A, mincost::B, 6))
        .delete_at(SimTime::from_secs(12), mincost::A, link(mincost::A, mincost::B, 6))
        .insert_at(SimTime::from_secs(17), mincost::B, link(mincost::B, mincost::D, 3))
        .delete_at(SimTime::from_secs(22), mincost::B, link(mincost::B, mincost::D, 3))
        .build();
    tb.run_until(SimTime::from_secs(30));
    tb
}

/// Satellite: mutating a sealed segment is detected by the suffix audit, and
/// no correct node is implicated.
#[test]
fn tampered_sealed_segment_is_detected_by_suffix_audit() {
    let mut tb = churning_mincost(5);
    // Node B drops the first entry of whatever suffix it serves.
    tb.set_byzantine(
        mincost::B,
        ByzantineConfig {
            tamper_log_drop_entry: Some(0),
            ..Default::default()
        },
    )
    .expect("deployed node");
    // A historical audit anchors at the checkpoint sealed at t = 15 and
    // fetches the sealed segments after it — including the tampered one.
    let at = SimTime::from_secs(16).as_micros();
    let audit = tb.querier.audit_at(mincost::B, Some(at));
    assert_eq!(audit.color, Color::Red, "tampering must be detected: {:?}", audit.notes);
    assert!(audit.anchor_epoch.is_some(), "the audit must have anchored mid-history");

    // Correct nodes still audit clean, and accuracy holds on their graphs.
    let byzantine: BTreeSet<NodeId> = [mincost::B].into();
    for node in [mincost::A, mincost::C, mincost::D, mincost::E] {
        let audit = tb.querier.audit_at(node, Some(at));
        assert_eq!(audit.color, Color::Black, "{node}: {:?}", audit.notes);
        let graph = tb.querier.node_graph(node);
        assert!(properties::check_accuracy(&graph, &byzantine).is_ok());
    }
}

/// Satellite: forging the checkpoint's state snapshot is detected (the
/// snapshot digest is committed in the signed checkpoint), and honest nodes
/// stay clean.
#[test]
fn forged_checkpoint_snapshot_is_detected() {
    let mut tb = churning_mincost(11);
    tb.set_byzantine(
        mincost::C,
        ByzantineConfig {
            forge_checkpoint_snapshot: true,
            ..Default::default()
        },
    )
    .expect("deployed node");
    let audit = tb.querier.audit(mincost::C);
    assert_eq!(
        audit.color,
        Color::Red,
        "forged snapshot must be detected: {:?}",
        audit.notes
    );
    assert!(
        audit.notes.iter().any(|n| n.contains("snapshot")),
        "the note must name the snapshot digest mismatch: {:?}",
        audit.notes
    );
    let byzantine: BTreeSet<NodeId> = [mincost::C].into();
    for node in [mincost::A, mincost::B, mincost::D, mincost::E] {
        let audit = tb.querier.audit(node);
        assert_eq!(audit.color, Color::Black, "{node}: {:?}", audit.notes);
        let graph = tb.querier.node_graph(node);
        assert!(properties::check_accuracy(&graph, &byzantine).is_ok());
    }
}

/// The anchoring checkpoint is not blindly trusted: its committed state must
/// be *reproducible* by replaying the linking epoch's (chain-pinned) entries
/// from the previous checkpoint.  A machine that fabricates state — here an
/// Eclipse attacker answering a lookup with itself, sealed into the last
/// epoch before the anchor — is caught even though the suffix after the
/// anchor replays clean.
#[test]
fn fabricated_checkpoint_state_fails_the_chain_link_check() {
    let ring_preview = chord::ChordRing::new(12);
    let attacker = ring_preview.members[3].1;
    let (mut tb, ring) = chord_deployment(13, 60, Some(10), None, Some(attacker));
    // The lie lands inside the epoch [30 s, 40 s) — the epoch the audit's
    // anchor (sealed at 40 s) closes: the attacker's machine derives a bogus
    // lookupResult that ends up in the sealed state the checkpoint commits.
    let key = (ring.members[7].0 + 1) % chord::ID_SPACE;
    tb.insert_at(
        SimTime::from_secs(35),
        attacker,
        chord::lookup(attacker, key, attacker, 9),
    );
    tb.run_until(SimTime::from_secs(45));
    let audit = tb.querier.audit(attacker);
    assert_eq!(
        audit.color,
        Color::Red,
        "fabricated checkpoint state must fail the chain-link check: {:?}",
        audit.notes
    );
    // Honest nodes pass the same chain check.
    for (_, handle) in tb.handles.iter().take(4) {
        let id = handle.id();
        if id == attacker {
            continue;
        }
        let audit = tb.querier.audit(id);
        assert_eq!(audit.color, Color::Black, "{id}: {:?}", audit.notes);
    }
}

/// Acceptance criterion: with `retain_epochs(k)` per-node log bytes plateau
/// instead of growing linearly, while a forensic query inside the retained
/// window still identifies exactly the injected culprit (E7, Chord Eclipse).
#[test]
fn truncation_plateaus_log_growth_and_keeps_forensics_inside_the_window() {
    // --- storage plateau -------------------------------------------------
    let growth = |retain: Option<usize>| {
        let (mut tb, _) = chord_deployment(3, 120, Some(10), retain, None);
        tb.run_until(SimTime::from_secs(60));
        let at_60 = tb.total_log_bytes();
        tb.run_until(SimTime::from_secs(121));
        let at_120 = tb.total_log_bytes();
        (at_60, at_120)
    };
    let (unbounded_60, unbounded_120) = growth(None);
    let (retained_60, retained_120) = growth(Some(2));
    assert!(
        unbounded_120 as f64 >= unbounded_60 as f64 * 1.5,
        "without truncation the log keeps growing ({unbounded_60} -> {unbounded_120})"
    );
    assert!(
        (retained_120 as f64) < retained_60 as f64 * 1.3,
        "with retain_epochs(2) the log must plateau ({retained_60} -> {retained_120})"
    );
    assert!(retained_120 < unbounded_120 / 2);

    // --- forensics inside the retained window ----------------------------
    let ring_preview = chord::ChordRing::new(12);
    let attacker = ring_preview.members[3].1;
    let (mut tb, ring) = chord_deployment(3, 120, Some(10), Some(2), Some(attacker));
    // The attacker answers a late lookup (inside the retained window) with
    // itself as the owner.
    let key = (ring.members[7].0 + 1) % chord::ID_SPACE;
    tb.insert_at(
        SimTime::from_secs(121),
        attacker,
        chord::lookup(attacker, key, attacker, 5),
    );
    tb.run_until(SimTime::from_secs(124));
    assert!(
        tb.handles.values().any(|h| h.with(|n| n.log_dropped_entries()) > 0),
        "the run must actually have truncated history"
    );
    // An audit anchored at the truncation horizon cannot cross-check its
    // anchoring checkpoint (the linking epoch is gone) and must come back
    // Yellow — suspect, but never implicating an honest node.
    let some_honest = tb
        .handles
        .keys()
        .find(|id| **id != attacker)
        .copied()
        .expect("honest node");
    let horizon_audit = tb.querier.audit_at(some_honest, Some(0));
    assert_eq!(
        horizon_audit.color,
        Color::Yellow,
        "horizon-anchored audits are unverifiable, not clean: {:?}",
        horizon_audit.notes
    );

    let bogus = chord::lookup_result(attacker, 5, key, attacker, chord::chord_id(attacker));
    let result = tb.querier.why_exists(bogus).at(attacker).run();
    let byzantine: BTreeSet<NodeId> = [attacker].into();
    assert!(
        properties::check_completeness(&result, &byzantine).is_ok(),
        "the culprit must be identified: suspects = {:?}",
        result.suspect_nodes()
    );
    for implicated in result.implicated_nodes() {
        assert!(byzantine.contains(&implicated), "correct node {implicated} implicated");
    }
    // Honest nodes' audits stay clean even though their old epochs are gone.
    for (_, handle) in tb.handles.iter().take(4) {
        let id = handle.id();
        if id == attacker {
            continue;
        }
        let audit = tb.querier.audit(id);
        assert_eq!(audit.color, Color::Black, "{id}: {:?}", audit.notes);
    }
}

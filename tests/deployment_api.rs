//! Integration tests for the unified deployment API: `Application` +
//! `DeploymentBuilder` + the fluent `QueryBuilder`, including the behaviours
//! the old `Testbed` wiring could not express (builder defaults, audit-cache
//! reuse across repeated queries, epoch-sealed logs).

// Test code may unwrap: a panic is the assertion.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use snp::apps::mincost::{self, best_cost, link, MinCost};
use snp::core::deploy::Deployment;
use snp::crypto::keys::NodeId;
use snp::sim::SimTime;

/// The querier anchors a query at the tuple's own location when `.at()` is
/// not given.
#[test]
fn query_builder_defaults_to_the_tuples_location() {
    let mut deployment = mincost::build_scenario(true, 42);
    deployment.run_until(SimTime::from_secs(30));
    let anchored = deployment
        .querier
        .why_exists(best_cost(mincost::C, mincost::D, 5))
        .at(mincost::C)
        .run();
    deployment.querier.clear_cache();
    let defaulted = deployment
        .querier
        .why_exists(best_cost(mincost::C, mincost::D, 5))
        .run();
    assert_eq!(
        anchored.root, defaulted.root,
        "default host must equal the tuple's location"
    );
    assert!(defaulted.is_legitimate());
}

/// The structured result exposes the provenance tree without string
/// rendering: vertices, their hosts and the tuples they mention.
#[test]
fn query_result_iterates_vertices_and_hosts() {
    let mut deployment = mincost::build_scenario(true, 42);
    deployment.run_until(SimTime::from_secs(30));
    let result = deployment
        .querier
        .why_exists(best_cost(mincost::C, mincost::D, 5))
        .run();
    assert!(!result.is_empty());
    assert_eq!(result.vertices().count(), result.len());
    assert!(result.hosts().contains(&mincost::C));
    // Every vertex host must be a node of the deployment.
    for vertex in result.vertices() {
        assert!(
            deployment.handles.contains_key(&vertex.host()),
            "unknown host {}",
            vertex.host()
        );
    }
    // The root is at depth 0.
    assert!(result.vertices_with_depth().any(|(_, depth)| depth == 0));
    assert!(result.mentions(&link(mincost::B, mincost::D, 3)) || result.mentions(&link(mincost::C, mincost::D, 5)));
}

/// Baseline and secure deployments run the same application to the same
/// converged routing state (`bestCost`); only the SNP machinery (logs)
/// differs.  Transient `cost` tuples can differ because SNP traffic shifts
/// message timing.
#[test]
fn baseline_and_secure_deployments_agree_on_app_state() {
    let mut secure = Deployment::builder().seed(42).app(MinCost::example()).build();
    let mut baseline = Deployment::builder()
        .seed(42)
        .baseline()
        .app(MinCost::example())
        .build();
    secure.run_until(SimTime::from_secs(30));
    baseline.run_until(SimTime::from_secs(30));
    let best_costs = |d: &Deployment, node: NodeId| {
        let mut tuples: Vec<_> = d.handles[&node]
            .with(|n| n.current_tuples())
            .into_iter()
            .filter(|t| t.relation == "bestCost")
            .collect();
        tuples.sort();
        tuples
    };
    for node in [mincost::A, mincost::B, mincost::C, mincost::D, mincost::E] {
        assert_eq!(
            best_costs(&secure, node),
            best_costs(&baseline, node),
            "node {node} routes must not depend on SNP"
        );
    }
    assert!(secure.total_log_bytes() > 0);
    assert_eq!(baseline.total_log_bytes(), 0);
}

/// Re-running a query without simulation progress hits the audit cache: the
/// second run downloads nothing and audits nobody (§5.6).
#[test]
fn repeated_queries_hit_the_audit_cache() {
    let mut deployment = mincost::build_scenario(true, 42);
    deployment.run_until(SimTime::from_secs(30));
    let first = deployment
        .querier
        .why_exists(best_cost(mincost::C, mincost::D, 5))
        .run();
    assert!(first.stats.audits > 0);
    assert!(first.stats.log_bytes > 0);
    let second = deployment
        .querier
        .why_exists(best_cost(mincost::C, mincost::D, 5))
        .run();
    assert_eq!(second.stats.audits, 0, "second query must reuse cached audits");
    assert_eq!(second.stats.log_bytes, 0, "second query must download no log data");
    assert_eq!(second.root, first.root);
    // A no-op run_until (same deadline, nothing to process) keeps the cache.
    deployment.run_until(SimTime::from_secs(30));
    let third = deployment
        .querier
        .why_exists(best_cost(mincost::C, mincost::D, 5))
        .run();
    assert_eq!(third.stats.audits, 0, "no-op runs must not invalidate the cache");
}

/// With epoch sealing enabled, a query on a sealed deployment anchors its
/// audits at checkpoints, replays only the suffix, and still answers
/// legitimately — and overlapping queries share the per-(node, epoch) cache.
#[test]
fn epoch_sealed_deployment_answers_from_checkpoints() {
    use snp::sim::SimDuration;

    let mut deployment = snp::core::Deployment::builder()
        .seed(42)
        .app(snp::apps::mincost::MinCost::example())
        .epoch_length(SimDuration::from_secs(5))
        .build();
    deployment.run_until(SimTime::from_secs(30));
    for handle in deployment.handles.values() {
        assert!(handle.with(|n| n.current_epoch()) >= 5, "epochs must have rolled");
    }
    let result = deployment
        .querier
        .why_exists(best_cost(mincost::C, mincost::D, 5))
        .run();
    assert!(result.is_legitimate(), "{}", result.render());
    // Every audit anchored at a checkpoint and skipped the sealed prefix.
    for audit in result.audits.values() {
        assert!(audit.anchor_epoch.is_some(), "audit of {} not anchored", audit.node);
    }
    assert!(
        result.stats.skipped_entries > 0,
        "anchored replay must skip pre-checkpoint entries"
    );
    assert_eq!(result.stats.segments_fetched as usize, result.stats.segment_bytes.len());

    // A different overlapping query on the quiescent system shares the
    // per-(node, epoch) audit cache: hosts audited by the first query are not
    // re-audited, only genuinely new hosts are.
    let first_hosts: std::collections::BTreeSet<_> = result.audits.keys().copied().collect();
    let overlapping = deployment
        .querier
        .why_exists(best_cost(mincost::B, mincost::D, 3))
        .run();
    let new_hosts = overlapping.audits.keys().filter(|h| !first_hosts.contains(h)).count() as u64;
    assert_eq!(
        overlapping.stats.audits, new_hosts,
        "audits of hosts shared with the first query must come from the cache"
    );
}

/// `.scope(n)` bounds exploration exactly like the old positional argument.
#[test]
fn scope_bounds_exploration_through_the_builder() {
    let mut deployment = mincost::build_scenario(true, 42);
    deployment.run_until(SimTime::from_secs(30));
    let narrow = deployment
        .querier
        .why_exists(best_cost(mincost::C, mincost::D, 5))
        .scope(1)
        .run();
    deployment.querier.clear_cache();
    let wide = deployment
        .querier
        .why_exists(best_cost(mincost::C, mincost::D, 5))
        .unbounded()
        .run();
    assert!(narrow.len() < wide.len(), "narrow={} wide={}", narrow.len(), wide.len());
}

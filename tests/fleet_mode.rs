//! Fleet-mode integration tests (ISSUE 9): the same `SnoopyNode` callbacks
//! the simulator drives, run instead by `FleetNode` against a pluggable
//! `Transport`, with the querier reaching the node through the audit RPC
//! (`RemotePeer`) rather than a shared in-process handle.
//!
//! These tests use the deterministic `InMemNet` transport so they stay
//! socket-free and fast; `crates/sim` covers the TCP transport itself and
//! `examples/real_fleet.rs` (exercised by CI) covers real OS processes on
//! loopback.

// Test code may unwrap: a panic is the assertion.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use snp::apps::fleet::{peer_best_cost, peer_link, FleetDemo, DEST, PEER};
use snp::core::deploy::TransportChoice;
use snp::core::{ConfigError, Deployment, FleetNode, NodeId, RemotePeer, SnoopyWire};
use snp::datalog::SmInput;
use snp::sim::{InMemNet, SimDuration};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The querier process's transport identity (never a deployed node).
const QUERIER: NodeId = NodeId(900);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snp-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawn a fleet node on `net` and keep pumping it until the guard drops.
struct PeerProcess {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<FleetNode>>,
}

impl PeerProcess {
    fn spawn(mut node: FleetNode) -> PeerProcess {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            node.start();
            while !stop2.load(Ordering::Relaxed) {
                node.run_for(Duration::from_millis(5));
            }
            node
        });
        PeerProcess {
            stop,
            thread: Some(thread),
        }
    }

    fn kill(mut self) -> FleetNode {
        self.stop.store(true, Ordering::Relaxed);
        self.thread.take().unwrap().join().unwrap()
    }
}

impl Drop for PeerProcess {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn demo_builder(dir: &std::path::Path) -> snp::core::DeploymentBuilder {
    Deployment::builder()
        .app(FleetDemo::new())
        .epoch_length(SimDuration::from_millis(40))
        .segment_dir(dir)
}

fn insert_links(peer: &RemotePeer) {
    for (dest, cost) in [(DEST, 5), (NodeId(3), 9)] {
        peer.send_wire(&SnoopyWire::Operator {
            input: SmInput::InsertBase(peer_link(dest, cost)),
        })
        .unwrap();
    }
}

/// Wait until the peer has sealed at least one epoch covering its appends
/// (bounded; panics if the fleet node never seals).
fn await_sealed_epoch(peer: &RemotePeer) {
    for _ in 0..400 {
        if peer.retrieve_anchored_ready() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("peer never sealed an epoch");
}

trait RemotePeerExt {
    fn retrieve_anchored_ready(&self) -> bool;
}

impl RemotePeerExt for RemotePeer {
    fn retrieve_anchored_ready(&self) -> bool {
        matches!(
            self.call(&snp::core::AuditRequest::AnchorEpoch { at: None }),
            Some(snp::core::AuditResponse::AnchorEpoch(Some(_)))
        )
    }
}

#[test]
fn tcp_transport_cannot_build_a_single_process_deployment() {
    let err = Deployment::builder()
        .app(FleetDemo::new())
        .transport(TransportChoice::Tcp)
        .try_build()
        .unwrap_err();
    assert_eq!(err, ConfigError::FleetTransport);
    assert!(err.to_string().contains("build_fleet_node"), "{err}");
}

#[test]
fn remote_querier_audits_a_live_fleet_node() {
    let dir = temp_dir("audit");
    let net = InMemNet::new();
    let (node, report) = demo_builder(&dir)
        .build_fleet_node(PEER, Box::new(net.endpoint(PEER)), true)
        .unwrap();
    assert_eq!(report.unwrap().resumed_seq, 0, "fresh directory starts at genesis");
    let process = PeerProcess::spawn(node);

    let peer = RemotePeer::new(PEER, Box::new(net.endpoint(QUERIER)), Duration::from_secs(5));
    insert_links(&peer);
    await_sealed_epoch(&peer);

    let mut querier = demo_builder(&dir).build_fleet_querier(vec![peer]).unwrap();
    let result = querier.why_exists(peer_best_cost(5)).at(PEER).run();
    assert!(result.is_legitimate(), "live audit must be green:\n{}", result.render());
    assert!(result.stats.total_bytes() > 0, "evidence travelled over the transport");
    drop(process);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restarted_fleet_node_resumes_from_checkpoint_and_tamper_turns_red() {
    let dir = temp_dir("tamper");
    let net = InMemNet::new();
    let (node, _) = demo_builder(&dir)
        .build_fleet_node(PEER, Box::new(net.endpoint(PEER)), true)
        .unwrap();
    let process = PeerProcess::spawn(node);
    let peer = RemotePeer::new(PEER, Box::new(net.endpoint(QUERIER)), Duration::from_secs(5));
    insert_links(&peer);
    await_sealed_epoch(&peer);

    // Phase 1: live audit is green.
    let mut querier = demo_builder(&dir).build_fleet_querier(vec![peer.clone()]).unwrap();
    let result = querier.why_exists(peer_best_cost(5)).at(PEER).run();
    assert!(result.is_legitimate(), "pre-crash audit:\n{}", result.render());

    // Wait until the inserted links have been *sealed* (an entry-bearing
    // segment is on disk), so phase 2 has content to corrupt.
    let node_dir = dir.join(format!("node-{}", PEER.0));
    for waited in 0..=400 {
        let sealed_entries = std::fs::read_dir(&node_dir)
            .map(|read| {
                read.filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.extension().is_some_and(|x| x == "seg"))
                    .any(|p| std::fs::metadata(&p).map(|m| m.len()).unwrap_or(0) > snp::log::store::SEG_HEADER_LEN)
            })
            .unwrap_or(false);
        if sealed_entries {
            break;
        }
        assert!(waited < 400, "links were never sealed into a segment");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Phase 2: "crash" the peer process and corrupt the latest sealed
    // segment on disk (a single flipped content bit, as a disk fault or
    // tampering would — the record still parses, so only cryptographic
    // verification can tell).
    let node = process.kill();
    drop(node); // flush + release the store
    let seg = snp::core::fleet::tamper_latest_sealed_segment(&node_dir).unwrap();
    assert!(seg.extension().is_some_and(|x| x == "seg"));

    // An honest restart refuses the tampered store outright.
    let verify_err = demo_builder(&dir)
        .build_fleet_node(PEER, Box::new(net.endpoint(PEER)), true)
        .unwrap_err();
    assert!(
        matches!(verify_err, ConfigError::Store { .. }),
        "verified recovery must reject tampering: {verify_err}"
    );

    // Phase 3: a *compromised* node restarts anyway (verification off) and
    // serves the tampered bytes; the querier's anchored replay convicts it.
    // Sealing is frozen (one-hour epochs) so the audit anchors at the
    // tampered epoch: a node that keeps sealing pushes the corruption
    // behind the latest chain link, which is the historical-audit case
    // (see DESIGN.md, truncation boundaries), not this test's story.
    let (node, report) = demo_builder(&dir)
        .epoch_length(SimDuration::from_secs(3600))
        .build_fleet_node(PEER, Box::new(net.endpoint(PEER)), false)
        .unwrap();
    assert!(report.unwrap().resumed_seq > 0, "resumed from the sealed checkpoint");
    let process = PeerProcess::spawn(node);
    querier.clear_cache();
    let result = querier.why_exists(peer_best_cost(5)).at(PEER).run();
    assert!(
        !result.is_legitimate(),
        "tampered evidence must not audit green:\n{}",
        result.render()
    );
    drop(process);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_and_simulator_agree_on_the_demo_verdict() {
    // The same application, driven through the simulator: the fleet path
    // must not change what a green audit looks like.
    let mut deployment = Deployment::builder()
        .app(FleetDemo::new())
        .epoch_length(SimDuration::from_millis(40))
        .insert_at(snp::sim::SimTime::from_millis(10), PEER, peer_link(DEST, 5))
        .insert_at(snp::sim::SimTime::from_millis(15), PEER, peer_link(NodeId(3), 9))
        .build();
    deployment.run_until(snp::sim::SimTime::from_secs(2));
    let sim_result = deployment.querier.why_exists(peer_best_cost(5)).at(PEER).run();
    assert!(sim_result.is_legitimate(), "{}", sim_result.render());
}

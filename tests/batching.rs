//! Runtime equivalence of the §5.6 batched commitment protocol.
//!
//! The invariant that makes batching safe: for any `batch_window`, the
//! converged tuple state and every provenance query verdict are identical
//! to the unbatched run — only signature counts, packet counts, and wire
//! bytes change.  These tests exercise that invariant over randomized
//! MinCost deployments and the BGP workload, clean and under fault
//! injection, across zero / small / large windows.
//!
//! The network model draws per-message jitter, so delivery interleavings
//! (and hence the *intermediate* deltas confluent applications emit) can
//! differ between any two configurations; the window-independent facts on
//! such a network are the converged state and every audit/query verdict.
//! Byte-level log-history equality additionally holds on an in-order
//! fixed-delay network, asserted by the FIFO pair test in `snp-core`'s
//! node module.

// Test code may unwrap: a panic is the assertion.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use snp::apps::bgp::BgpScenario;
use snp::apps::mincost::{link, mincost_rules};
use snp::core::deploy::Deployment;
use snp::core::node::NodeTraffic;
use snp::core::ByzantineConfig;
use snp::crypto::keys::NodeId;
use snp::datalog::{Engine, Tuple, TupleDelta};
use snp::graph::Color;
use snp::sim::rng::DetRng;
use snp::sim::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// The window sweep every equivalence case runs: unbatched, a small window,
/// and a large one (µs).
const WINDOWS: [u64; 3] = [0, 20_000, 250_000];

/// Build and run a MinCost deployment over `n` routers with the given links
/// and batching window, optionally with one Byzantine node.
fn run_mincost(
    n: u64,
    links: &[(u64, u64, i64)],
    window_us: u64,
    byzantine: Option<(u64, ByzantineConfig)>,
) -> Deployment {
    let mut builder = Deployment::builder()
        .seed(7)
        .secure(true)
        .batch_window(SimDuration::from_micros(window_us));
    for i in 1..=n {
        builder = builder.node(NodeId(i), |id| Box::new(Engine::new(id, mincost_rules())));
    }
    if let Some((node, cfg)) = byzantine {
        builder = builder.byzantine(NodeId(node), cfg);
    }
    for (idx, (a, b, cost)) in links.iter().enumerate() {
        let at = SimTime::from_millis(10 + idx as u64);
        builder = builder
            .insert_at(at, NodeId(*a), link(NodeId(*a), NodeId(*b), *cost))
            .insert_at(at, NodeId(*b), link(NodeId(*b), NodeId(*a), *cost));
    }
    let mut tb = builder.build();
    // Quiescence with margin: every window (≤ 250 ms) has long since
    // flushed, every ack has landed.
    tb.run_until(SimTime::from_secs(25));
    tb
}

/// A random link set over routers `1..=n` (same generator as
/// tests/snp_properties.rs).
fn arbitrary_links(rng: &mut DetRng, n: u64) -> Vec<(u64, u64, i64)> {
    let count = 2 + rng.next_below(8) as usize;
    (0..count)
        .map(|_| {
            (
                1 + rng.next_below(n),
                1 + rng.next_below(n),
                1 + rng.next_below(19) as i64,
            )
        })
        .filter(|(a, b, _)| a != b)
        .collect()
}

/// Everything the equivalence invariant promises is window-independent on
/// an arbitrary (jittery) network: the converged per-node state and every
/// audit verdict.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    /// Per-node committed tuple state at quiescence.
    committed: BTreeMap<u64, BTreeSet<String>>,
    /// Per-node audit verdict.
    audits: BTreeMap<u64, Color>,
}

fn fingerprint(tb: &mut Deployment) -> Fingerprint {
    let mut committed = BTreeMap::new();
    let mut audits = BTreeMap::new();
    let ids: Vec<NodeId> = tb.handles.keys().copied().collect();
    for id in ids {
        let tuples: BTreeSet<String> = tb.handles[&id]
            .with(|n| n.current_tuples())
            .iter()
            .map(|t| t.to_string())
            .collect();
        committed.insert(id.0, tuples);
        audits.insert(id.0, tb.querier.audit(id).color);
    }
    Fingerprint { committed, audits }
}

/// The equivalence property, clean runs: window 0 / small / large produce
/// identical committed state, identical audit verdicts (all black), and
/// identical provenance answers for the best-path tuple.
#[test]
fn prop_batched_windows_commit_identical_state_and_verdicts() {
    for case in 0..6u64 {
        let mut rng = DetRng::new(1000 + case);
        let links = arbitrary_links(&mut rng, 5);
        let mut reference: Option<Fingerprint> = None;
        let mut reference_query: Option<(BTreeSet<NodeId>, BTreeSet<u64>)> = None;
        for window in WINDOWS {
            let mut tb = run_mincost(5, &links, window, None);
            let print = fingerprint(&mut tb);
            for (&node, color) in &print.audits {
                assert_eq!(
                    *color,
                    Color::Black,
                    "case {case} window {window}: honest node {node} not black"
                );
            }
            match &reference {
                None => reference = Some(print),
                Some(expected) => assert_eq!(
                    expected, &print,
                    "case {case} window {window}: run diverged from the unbatched reference"
                ),
            }
            // Provenance answers: explain node 1's best-cost tuple (when one
            // exists) and compare the verdict and the set of hosts the
            // explanation touches.
            let best = tb.handles[&NodeId(1)]
                .with(|n| n.current_tuples())
                .into_iter()
                .find(|t| t.relation == "bestCost");
            if let Some(tuple) = best {
                let result = tb.querier.why_exists(tuple).at(NodeId(1)).run();
                assert!(result.root.is_some(), "case {case} window {window}");
                let shape = (
                    result.implicated_nodes(),
                    result.hosts().iter().map(|n| n.0).collect::<BTreeSet<u64>>(),
                );
                match &reference_query {
                    None => reference_query = Some(shape),
                    Some(expected) => {
                        assert_eq!(expected, &shape, "case {case} window {window}: query answer diverged")
                    }
                }
            }
        }
    }
}

/// The equivalence property under fault injection: the verdicts (who is
/// implicated / notified) are window-independent even when nodes misbehave.
#[test]
fn prop_batched_windows_expose_the_same_byzantine_nodes() {
    let links = [(1u64, 2u64, 3i64), (2, 3, 2), (1, 3, 9), (3, 4, 1)];
    // A fabricated notification: node 3 claims a link that was never
    // inserted.  The lie must be traced to node 3 at every window.
    let lie = TupleDelta::plus(link(NodeId(2), NodeId(4), 1));
    for window in WINDOWS {
        let mut tb = run_mincost(
            4,
            &links,
            window,
            Some((3, ByzantineConfig::fabricating(NodeId(2), lie.clone()))),
        );
        let audit = tb.querier.audit(NodeId(3));
        assert_eq!(audit.color, Color::Red, "window {window}: liar not exposed");
        for honest in [1u64, 2, 4] {
            assert_eq!(
                tb.querier.audit(NodeId(honest)).color,
                Color::Black,
                "window {window}: honest node {honest} framed"
            );
        }
    }
    // Evidence tampering: dropping a log entry must fail verification at
    // every window (the per-batch authenticator spans the same chain).
    for window in WINDOWS {
        let cfg = ByzantineConfig {
            tamper_log_drop_entry: Some(0),
            ..Default::default()
        };
        let mut tb = run_mincost(4, &links, window, Some((2, cfg)));
        assert_eq!(
            tb.querier.audit(NodeId(2)).color,
            Color::Red,
            "window {window}: tampering not detected"
        );
    }
}

/// Ack withholding under batching: a node that consumes batches but never
/// piggybacks the acknowledgments is exposed by the sender's commitment
/// sweep at every nonzero window.
#[test]
fn ack_withholding_is_exposed_at_every_nonzero_window() {
    let links = [(1u64, 2u64, 3i64), (2, 3, 2)];
    for window in [20_000u64, 250_000] {
        let cfg = ByzantineConfig {
            withhold_batch_acks: true,
            ..Default::default()
        };
        let tb = run_mincost(3, &links, window, Some((2, cfg)));
        let notified = tb.handles[&NodeId(1)].with(|n| !n.maintainer_notifications().is_empty())
            || tb.handles[&NodeId(3)].with(|n| !n.maintainer_notifications().is_empty());
        assert!(notified, "window {window}: nobody reported the withheld batch acks");
        // The withholder still applied the deltas — it is hiding, not deaf.
        assert!(!tb.handles[&NodeId(2)].with(|n| n.current_tuples()).is_empty());
    }
}

/// The headline number: on the BGP workload a nonzero window must cut
/// commitment signatures by a large factor while leaving the routing
/// outcome untouched.
#[test]
fn bgp_batching_preserves_routes_and_slashes_signatures() {
    let scenario = BgpScenario {
        ases: 8,
        prefixes: 12,
        updates: 160,
        duration_s: 10,
    };
    let run = |window_us: u64| -> (BTreeMap<u64, BTreeSet<String>>, NodeTraffic) {
        let mut tb = Deployment::builder()
            .seed(11)
            .secure(true)
            .batch_window(SimDuration::from_micros(window_us))
            .app(scenario.app(true))
            .build();
        tb.run_until(SimTime::from_secs(scenario.duration_s + 10));
        let routes: BTreeMap<u64, BTreeSet<String>> = tb
            .handles
            .iter()
            .map(|(id, h)| {
                let table: BTreeSet<String> = h
                    .with(|n| n.current_tuples())
                    .iter()
                    .filter(|t| t.relation == "route")
                    .map(Tuple::to_string)
                    .collect();
                (id.0, table)
            })
            .collect();
        (routes, tb.total_traffic())
    };
    let (routes_unbatched, traffic_unbatched) = run(0);
    let (routes_batched, traffic_batched) = run(500_000);
    assert_eq!(
        routes_unbatched, routes_batched,
        "batching changed the converged routing tables"
    );
    // Interleavings differ across windows, so the exact count of
    // *intermediate* advertisements may too; both runs must carry real
    // update churn for the signature comparison to mean anything.
    assert!(traffic_unbatched.data_messages > 100 && traffic_batched.data_messages > 100);
    let unbatched_sigs = traffic_unbatched.commitment_signatures();
    let batched_sigs = traffic_batched.commitment_signatures();
    assert!(
        unbatched_sigs >= 5 * batched_sigs,
        "expected ≥5x fewer commitment signatures, got {unbatched_sigs} vs {batched_sigs}"
    );
    assert!(
        traffic_batched.authenticator_bytes < traffic_unbatched.authenticator_bytes,
        "amortized authenticators must shrink wire bytes"
    );
}

/// `SNP_BATCH_WINDOW` reaches every node of a deployment (builder override).
#[test]
fn builder_window_reaches_every_node() {
    let tb = run_mincost(3, &[(1, 2, 1)], 42_000, None);
    assert_eq!(tb.batch_window_micros(), 42_000);
    for handle in tb.handles.values() {
        assert_eq!(handle.with(|n| n.batch_window()), 42_000);
    }
    let unbatched = run_mincost(3, &[(1, 2, 1)], 0, None);
    assert_eq!(unbatched.batch_window_micros(), 0);
}

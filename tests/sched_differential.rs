//! Randomized lockstep differential between the two event-queue
//! implementations (PR 7's `NaiveEngine` discipline applied to the
//! scheduler): the hierarchical timing wheel and the historical binary-heap
//! oracle are driven by the same seeded push/pop/remove/timer script and
//! must produce byte-identical observable behaviour — pop order, removal
//! results, peeks, lengths — at 1e2, 1e4 and 1e6 operations, and identical
//! end-to-end `TrafficStats` on a churned Chord deployment.

#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use snp_apps::chord::{run_with_churn, ChordScenario, ChurnPlan};
use snp_sim::event::{EventKind, EventQueue, SchedImpl};
use snp_sim::rng::DetRng;
use snp_sim::{NodeId, SimTime, TimerId};

/// FNV-1a style fold of one observation into the running digest.
fn fold(digest: u64, value: u64) -> u64 {
    (digest ^ value).wrapping_mul(0x0000_0100_0000_01b3)
}

fn fold_event(digest: u64, at: SimTime, seq: u64, kind: &EventKind<Vec<u8>>) -> u64 {
    let kind_word = match kind {
        EventKind::Deliver { from, to, payload } => 1u64
            .wrapping_add(from.0.wrapping_mul(31))
            .wrapping_add(to.0.wrapping_mul(131))
            .wrapping_add(payload.len() as u64),
        EventKind::Timer { node, id } => 2u64.wrapping_add(node.0.wrapping_mul(31)).wrapping_add(id.0),
        EventKind::Start { node } => 3u64.wrapping_add(node.0.wrapping_mul(31)),
    };
    fold(fold(fold(digest, at.as_micros()), seq), kind_word)
}

/// Drive one queue implementation through `ops` seeded operations and digest
/// every observable output.  The script never reads queue internals, so the
/// digest captures exactly what a simulator could observe.
fn drive(imp: SchedImpl, ops: u64, seed: u64) -> u64 {
    let mut q: EventQueue<Vec<u8>> = EventQueue::with_impl(imp);
    assert_eq!(q.sched_impl(), imp);
    let mut rng = DetRng::new(seed);
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut clock = 0u64; // time of the last popped event
    let mut pushed = 0u64;
    for _ in 0..ops {
        match rng.next_below(10) {
            // Push (~half the script): mixed horizons exercise every wheel
            // level — same-tick bursts, near deliveries, far timers — and an
            // occasional event behind the cursor (a "late injection").
            0..=4 => {
                let at = match rng.next_below(10) {
                    0 => clock.saturating_sub(rng.next_below(5_000)),
                    1..=3 => clock + rng.next_below(64),
                    4..=7 => clock + rng.next_below(5_000_000),
                    _ => clock + rng.next_below(1 << 31),
                };
                let kind = match rng.next_below(3) {
                    0 => EventKind::Deliver {
                        from: NodeId(rng.next_below(100)),
                        to: NodeId(rng.next_below(100)),
                        payload: vec![0u8; rng.next_below(32) as usize],
                    },
                    1 => EventKind::Timer {
                        node: NodeId(rng.next_below(100)),
                        id: TimerId(rng.next_below(1000)),
                    },
                    _ => EventKind::Start {
                        node: NodeId(rng.next_below(100)),
                    },
                };
                q.push(SimTime::from_micros(at), kind);
                pushed += 1;
            }
            // Pop.
            5..=7 => match q.pop() {
                Some(e) => {
                    clock = e.at.as_micros();
                    digest = fold_event(digest, e.at, e.seq, &e.kind);
                }
                None => digest = fold(digest, u64::MAX),
            },
            // Remove a (possibly spent, possibly never-issued) seq.
            8 => {
                let seq = rng.next_below(pushed + 2);
                match q.remove(seq) {
                    Some(e) => digest = fold_event(fold(digest, 7), e.at, e.seq, &e.kind),
                    None => digest = fold(digest, 11),
                }
            }
            // Observe without mutating.
            _ => {
                digest = fold(digest, q.peek_time().map(|t| t.as_micros()).unwrap_or(u64::MAX));
                digest = fold(digest, q.len() as u64);
            }
        }
    }
    // Drain what's left so the tail ordering is covered too.
    digest = fold(digest, q.len() as u64);
    while let Some(e) = q.pop() {
        digest = fold_event(digest, e.at, e.seq, &e.kind);
    }
    assert!(q.is_empty());
    assert_eq!(q.peek_time(), None);
    digest
}

fn assert_lockstep(ops: u64, seed: u64) {
    let wheel = drive(SchedImpl::Wheel, ops, seed);
    let heap = drive(SchedImpl::Heap, ops, seed);
    assert_eq!(
        wheel, heap,
        "wheel and heap diverged on the seeded script (ops={ops}, seed={seed})"
    );
}

#[test]
fn queue_differential_1e2_events() {
    for seed in [1, 2, 3, 4, 5] {
        assert_lockstep(100, seed);
    }
}

#[test]
fn queue_differential_1e4_events() {
    for seed in [11, 12, 13] {
        assert_lockstep(10_000, seed);
    }
}

#[test]
fn queue_differential_1e6_events() {
    assert_lockstep(1_000_000, 42);
}

/// The ordered inspection cursor must agree across implementations at every
/// probe point, not just the pop order.
#[test]
fn queue_listing_matches_across_impls() {
    let mut rng = DetRng::new(9);
    let mut wheel: EventQueue<Vec<u8>> = EventQueue::with_impl(SchedImpl::Wheel);
    let mut heap: EventQueue<Vec<u8>> = EventQueue::with_impl(SchedImpl::Heap);
    for round in 0..200 {
        let at = SimTime::from_micros(rng.next_below(1 << 22));
        let node = NodeId(rng.next_below(50));
        wheel.push(at, EventKind::Start { node });
        heap.push(at, EventKind::Start { node });
        if round % 3 == 0 {
            assert_eq!(wheel.pop().map(|e| (e.at, e.seq)), heap.pop().map(|e| (e.at, e.seq)));
        }
        if round % 7 == 0 {
            let listed_wheel: Vec<(SimTime, u64)> = wheel.iter().map(|e| (e.at, e.seq)).collect();
            let listed_heap: Vec<(SimTime, u64)> = heap.iter().map(|e| (e.at, e.seq)).collect();
            assert_eq!(listed_wheel, listed_heap);
        }
    }
}

/// End-to-end: a churned Chord deployment run on each scheduler produces the
/// same event count and byte-identical `TrafficStats`.
#[test]
fn chord_churn_traffic_identical_across_schedulers() {
    let scenario = ChordScenario {
        nodes: 30,
        stabilize_every_s: 5,
        fix_fingers_every_s: 10,
        keepalive_every_s: 2,
        lookups_per_minute: 30,
        duration_s: 30,
    };
    let plan = scenario.churn_plan(21, 10);
    let run = |imp: SchedImpl, plan: &ChurnPlan| {
        let mut tb = snp_core::deploy::Deployment::builder()
            .seed(17)
            .secure(false)
            .sched(imp)
            .app(scenario.app(None))
            .build();
        let events = run_with_churn(&mut tb, plan, SimTime::from_secs(35));
        (events, tb.sim.stats.clone(), tb.sim.events_processed())
    };
    let (events_w, stats_w, processed_w) = run(SchedImpl::Wheel, &plan);
    let (events_h, stats_h, processed_h) = run(SchedImpl::Heap, &plan);
    assert!(events_w > 0);
    assert_eq!(events_w, events_h, "event counts must match");
    assert_eq!(processed_w, processed_h);
    assert_eq!(stats_w, stats_h, "traffic must be byte-identical across schedulers");
}
